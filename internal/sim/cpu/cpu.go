// Package cpu implements the ChampSim-class trace-driven out-of-order core:
// a decoupled (or coupled) front-end with FTQ and fetch-directed instruction
// prefetch, branch direction/target prediction, L1I fetch, and a back-end
// with ROB, register dependency scheduling, load/store queues with
// store-to-load forwarding, and in-order retire.
//
// Like ChampSim, the model is trace-driven: wrong-path instructions are not
// available, so a mispredicted branch stalls instruction supply until the
// branch resolves in the back-end, after which fetch resumes with a redirect
// penalty. This is exactly the mechanism through which the paper's converter
// improvements change IPC: restoring register dependencies delays branch
// resolution (flag-reg, branch-regs), while splitting base updates
// accelerates address generation (base-update).
package cpu

import (
	"fmt"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/bpred"
	"tracerebase/internal/sim/btb"
	"tracerebase/internal/sim/dprefetch"
	"tracerebase/internal/sim/iprefetch"
	"tracerebase/internal/sim/mem"
)

// Config parameterizes the core.
type Config struct {
	// Name labels the configuration ("develop", "ipc1").
	Name string

	// Pipeline widths (instructions per cycle).
	FetchWidth, DispatchWidth, IssueWidth, RetireWidth int
	// ROBSize bounds in-flight instructions; SQSize bounds the store
	// queue used for store-to-load forwarding.
	ROBSize, SQSize int
	// FTQSize is the decoupled front-end's fetch target queue depth;
	// DecodeQueue bounds instructions fetched but not yet dispatched.
	FTQSize, DecodeQueue int

	// DecodeLatency is the fetch-to-dispatch pipe depth in cycles;
	// RedirectPenalty is the extra front-end bubble after a branch
	// resolves a misprediction.
	DecodeLatency, RedirectPenalty uint64

	// Decoupled enables the runahead branch-prediction unit that fills
	// the FTQ ahead of fetch and prefetches fetch targets into the L1I
	// (fetch-directed instruction prefetch).
	Decoupled bool

	// Rules selects the branch-type deduction (original or §3.2.2
	// patched ChampSim).
	Rules champtrace.RuleSet
	// Predictor names the direction predictor (see bpred.New).
	Predictor string
	// BTBEntries/BTBWays/RASSize size the target structures; UseITTAGE
	// adds the indirect target predictor; IdealTargets makes every
	// branch target prediction perfect (the IPC-1 configuration).
	BTBEntries, BTBWays, RASSize int
	UseITTAGE                    bool
	IdealTargets                 bool

	// Memory hierarchy and prefetchers.
	Hierarchy                   mem.HierarchyConfig
	L1DPrefetcher, L2Prefetcher string
	L1IPrefetcher               string

	// UseTLBs enables the ITLB/DTLB/STLB translation hierarchy; TLBs
	// sizes it (zero value = mem.DefaultTLBConfig).
	UseTLBs bool
	TLBs    mem.TLBHierarchyConfig

	// StoreForwardLatency is the load latency when forwarded from the
	// store queue.
	StoreForwardLatency uint64

	// NoCycleSkip disables event-horizon cycle skipping, forcing the
	// classic one-tick-per-pass loop. Skipping is transparent — every
	// reported counter is identical either way (the conformance suite's
	// CheckCycleSkipTransparency proves it) — so this exists only for
	// verification and benchmarking. The field participates in Identity(),
	// keying cached results separately from skipping runs.
	NoCycleSkip bool

	// Cores > 1 makes this an N-core lockstep configuration simulated via
	// NewMulti/MultiPipeline: per-core private L1I/L1D/L2/TLBs and
	// predictors in front of one shared LLC. The single-core entry points
	// (Run, WarmTo, RunFrom) reject such configurations. Participates in
	// Identity(), so multi-core cells key disjointly from single-core ones.
	Cores int
	// MemBandwidth is the LLC↔DRAM port issue interval in cycles (one
	// request per MemBandwidth cycles; queueing when exceeded). Zero
	// leaves the link unmodeled. Only meaningful at Cores > 1, where DRAM
	// pressure is a cross-core effect; single-core configurations reject a
	// nonzero value to keep the exact path byte-identical to prior
	// releases.
	MemBandwidth uint64

	// SamplePeriod > 0 enables SMARTS-style interval sampling: every
	// period instructions, SampleDetail instructions run through the full
	// detailed pipeline and the rest of the period is fast-forwarded by
	// the functional warmer (see sample.go). All three fields participate
	// in Identity(), so sampled and exact results can never share a cache
	// entry. Zero (the default) is exact mode, whose simulation path is
	// untouched by sampling.
	SamplePeriod uint64
	// SampleDetail is the detailed-interval length in instructions; the
	// first half of each interval is pipeline ramp-up excluded from
	// measurement (see sampleRampDiv).
	SampleDetail uint64
	// SampleWarm bounds full functional warming inside each fast-forward
	// gap: only the last SampleWarm instructions before the next detailed
	// interval update every structure (branch predictors, BTB, RAS,
	// prefetch hooks); the rest of the gap runs the light phase, which
	// warms caches, TLBs, and data prefetchers only. Zero fully warms
	// entire gaps (the classic SMARTS configuration).
	SampleWarm uint64
}

// Validate fills defaults and rejects nonsensical configurations.
func (c *Config) Validate() error {
	if c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("cpu: widths must be positive: %+v", c)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("cpu: ROB size must be positive")
	}
	if c.SQSize <= 0 {
		c.SQSize = 32
	}
	if c.FTQSize <= 0 {
		c.FTQSize = c.FetchWidth
	}
	if c.DecodeQueue <= 0 {
		c.DecodeQueue = 4 * c.DispatchWidth
	}
	if c.StoreForwardLatency == 0 {
		c.StoreForwardLatency = 2
	}
	if c.BTBEntries <= 0 {
		c.BTBEntries = 16384
	}
	if c.BTBWays <= 0 {
		c.BTBWays = 8
	}
	if c.RASSize <= 0 {
		c.RASSize = 64
	}
	if c.SamplePeriod > 0 {
		if c.SampleDetail == 0 {
			c.SampleDetail = c.SamplePeriod / 10
		}
		if c.SampleDetail >= c.SamplePeriod {
			return fmt.Errorf("cpu: sample detail %d must be smaller than sample period %d",
				c.SampleDetail, c.SamplePeriod)
		}
	}
	return nil
}

// Identity returns a canonical string covering every architectural
// parameter of the configuration — the processor-model component of a
// result-cache key. Two configurations with equal Identity simulate any
// trace identically (the code fingerprint, hashed alongside it, covers
// behavioural changes to the simulator itself). It renders the full field
// set rather than just Name so that ad-hoc variations of a named config
// (the front-end ablation's FTQ/decoupling edits, prefetcher swaps) key
// separately.
func (c Config) Identity() string {
	return fmt.Sprintf("cpu.Config%+v", c)
}

// WarmIdentity returns a canonical string covering exactly the parameters
// the functional warmer's state evolution depends on: rule set (branch
// classification), predictor and target-structure geometry, the memory and
// TLB hierarchies, the prefetchers, and SampleWarm (which sets how much of
// a warmed prefix is skipped versus warmed — see warmPrefix). Core geometry
// (widths, ROB, queues, latencies, decoupling) and the remaining sampling
// knobs are deliberately excluded — two configurations with equal
// WarmIdentity produce bit-identical warmed checkpoints over any prefix,
// which is what lets a sweep variant differing only in core geometry resume
// from a shared checkpoint.
func (c Config) WarmIdentity() string {
	return fmt.Sprintf("cpu.Warm{rules:%v pred:%s btb:%d/%d ras:%d ittage:%t ideal:%t hier:%+v dpf:%s/%s ipf:%s tlbs:%t %+v warm:%d}",
		c.Rules, c.Predictor, c.BTBEntries, c.BTBWays, c.RASSize,
		c.UseITTAGE, c.IdealTargets, c.Hierarchy,
		c.L1DPrefetcher, c.L2Prefetcher, c.L1IPrefetcher,
		c.UseTLBs, c.TLBs, c.SampleWarm)
}

// CacheStat is the per-level statistics surfaced in results.
type CacheStat struct {
	Accesses, Misses uint64
	UsefulPrefetches uint64
}

// MPKI returns misses per kilo instruction given the instruction count.
func (c CacheStat) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(c.Misses) / float64(instructions)
}

// Stats is the result of one simulation.
type Stats struct {
	// Instructions and Cycles cover the measured region (after warm-up).
	Instructions, Cycles uint64

	Branches, CondBranches, TakenBranches uint64
	// Mispredicts is the union of direction and target mispredictions;
	// the components are reported separately like the paper's Table 2.
	Mispredicts, DirMispredicts, TargetMispredicts uint64
	Returns, ReturnMispredicts                     uint64
	BTBMisses                                      uint64

	Loads, Stores uint64

	L1I, L1D, L2, LLC CacheStat

	// ITLBMisses, DTLBMisses and STLBMisses count translation misses
	// (zero when the configuration runs without TLBs).
	ITLBMisses, DTLBMisses, STLBMisses uint64

	// SkippedCycles counts measured-region cycles the event-horizon
	// skipper jumped over instead of ticking through (a subset of Cycles,
	// which is unchanged by skipping); CycleSkips counts the jumps. Both
	// are zero under Config.NoCycleSkip. Host-performance telemetry only:
	// no figure or table renders them.
	SkippedCycles, CycleSkips uint64

	// Sampling summary, populated only when Config.SamplePeriod > 0 (all
	// zero in exact mode; omitted from JSON so exact output is unchanged).
	// In sampled mode Instructions/Cycles and every counter above cover
	// the union of the detailed measurement windows, so IPC() is the
	// ratio-of-sums sampled estimate; SampleIPCMean/SampleCI95 give the
	// mean of per-interval IPCs and its 95% confidence half-width.
	// WarmedInstructions were fully functionally warmed; Skipped ones went
	// through the light phase (cache and TLB warming only).
	SampleIntervals     uint64  `json:",omitempty"`
	WarmedInstructions  uint64  `json:",omitempty"`
	SkippedInstructions uint64  `json:",omitempty"`
	SampleIPCMean       float64 `json:",omitempty"`
	SampleCI95          float64 `json:",omitempty"`
}

// IPC returns instructions per cycle for the measured region.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// BranchMPKI returns the overall branch MPKI (direction + target union).
func (s Stats) BranchMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Instructions)
}

// DirMPKI returns the direction misprediction MPKI.
func (s Stats) DirMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.DirMispredicts) / float64(s.Instructions)
}

// TargetMPKI returns the target misprediction MPKI for taken branches.
func (s Stats) TargetMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.TargetMispredicts) / float64(s.Instructions)
}

// ReturnMPKI returns the return-target misprediction MPKI (Fig. 5).
func (s Stats) ReturnMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.ReturnMispredicts) / float64(s.Instructions)
}

// New builds a single-core Pipeline for the given configuration. Multi-core
// configurations (Cores > 1) are built through NewMulti instead.
func New(cfg Config) (*Pipeline, error) {
	return newPipeline(cfg, nil, 0)
}

// newPipeline builds one core. hier == nil constructs a private hierarchy
// from cfg.Hierarchy (the single-core path); the multi-core engine passes
// each core's view of the shared hierarchy, plus the core's index for
// per-core LLC attribution.
func newPipeline(cfg Config, hier *mem.Hierarchy, coreID int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		if cfg.MemBandwidth > 0 {
			return nil, fmt.Errorf("cpu: MemBandwidth models the shared LLC↔DRAM port and requires Cores > 1 (use NewMulti)")
		}
		if cfg.Hierarchy.LLC.Policy == "shared-srrip" {
			return nil, fmt.Errorf("cpu: LLC policy %q is core-aware and requires Cores > 1 (use NewMulti)", cfg.Hierarchy.LLC.Policy)
		}
	}
	pred, err := bpred.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	tp := btb.NewTargetPredictor(cfg.BTBEntries, cfg.BTBWays, cfg.RASSize, cfg.UseITTAGE)
	tp.Ideal = cfg.IdealTargets

	if hier == nil {
		hier = mem.NewHierarchy(cfg.Hierarchy)
	}
	l1dpf, err := dprefetch.New(cfg.L1DPrefetcher)
	if err != nil {
		return nil, err
	}
	if l1dpf != nil {
		hier.L1D.SetPrefetcher(l1dpf)
	}
	l2pf, err := dprefetch.New(cfg.L2Prefetcher)
	if err != nil {
		return nil, err
	}
	if l2pf != nil {
		hier.L2.SetPrefetcher(l2pf)
	}
	ipf, err := iprefetch.New(cfg.L1IPrefetcher)
	if err != nil {
		return nil, err
	}

	// The arena must cover every in-flight uop: each live uop sits in
	// exactly one of FTQ, decode queue, or ROB, so their capacity sum
	// (rounded to a power of two for masked indexing) guarantees no live
	// slot is ever reused.
	arenaCap := nextPow2(cfg.FTQSize + cfg.DecodeQueue + cfg.ROBSize)
	ftqCap := nextPow2(cfg.FTQSize)
	decqCap := nextPow2(cfg.DecodeQueue)
	sqCap := nextPow2(cfg.SQSize)
	p := &Pipeline{
		cfg:       cfg,
		pred:      pred,
		tp:        tp,
		hier:      hier,
		coreID:    coreID,
		ipf:       ipf,
		arena:     make([]uop, arenaCap),
		arenaMask: uint32(arenaCap - 1),
		ftq:       make([]uref, ftqCap),
		ftqMask:   uint32(ftqCap - 1),
		decq:      make([]uref, decqCap),
		decqMask:  uint32(decqCap - 1),
		pending:   make([]uref, 0, cfg.ROBSize),
		sq:        make([]sqEntry, sqCap),
		sqMask:    uint32(sqCap - 1),
	}
	if cfg.UseTLBs {
		tcfg := cfg.TLBs
		if tcfg == (mem.TLBHierarchyConfig{}) {
			tcfg = mem.DefaultTLBConfig()
		}
		p.tlbs = mem.NewTLBHierarchy(tcfg)
	}
	return p, nil
}
