package synth

import "fmt"

// The CVP-1 public suite reproduced here has 135 traces split across the
// four categories with the original naming scheme (the paper cites
// compute_int_46, compute_int_23, srv_3, srv_62 — all present).
const (
	numComputeInt = 48
	numComputeFP  = 16
	numCrypto     = 8
	numServer     = 63
)

// jit derives a deterministic per-trace parameter in [lo,hi] from the trace
// index and a salt.
func jit(idx int, salt uint64, lo, hi float64) float64 {
	h := splitmix64(uint64(idx)*0x9e3779b97f4a7c15 + salt)
	return lo + (hi-lo)*hfrac(h)
}

func jitInt(idx int, salt uint64, lo, hi int) int {
	return lo + int(jit(idx, salt, 0, float64(hi-lo)+0.999))
}

// PublicProfile returns the profile of one CVP-1 public trace by category
// and index. Parameters are jittered per index so the suite spans the
// ranges the paper's figures sweep: branch MPKI (Fig. 3), base-update load
// fraction (Fig. 4), and the call-stack bug subset (Fig. 5).
func PublicProfile(cat Category, idx int) Profile {
	p := Profile{
		Name:            fmt.Sprintf("%s_%d", cat, idx),
		Category:        cat,
		Seed:            int64(splitmix64(uint64(idx)+uint64(len(cat))*1315423911) | 1),
		LoopIterations:  5,
		CallDepth:       4,
		DispatchTargets: jitInt(idx, 100, 1, 4),
		RandomTakenProb: 0.30,
		CrossLineFrac:   0.01,
		PreIndexFrac:    jit(idx, 101, 0.3, 0.7),
	}
	switch cat {
	case ComputeInt:
		p.NumFuncs = jitInt(idx, 1, 8, 28)
		p.FuncBodySites = jitInt(idx, 2, 64, 160)
		p.LoadFrac = jit(idx, 3, 0.15, 0.30)
		p.StoreFrac = jit(idx, 4, 0.05, 0.12)
		p.CondFrac = jit(idx, 5, 0.10, 0.22)
		p.CallFrac = jit(idx, 13, 0.02, 0.05)
		p.BranchBias = jit(idx, 6, 0.92, 0.997)
		p.CondRegFrac = jit(idx, 7, 0.3, 0.6)
		p.BranchOnLoadFrac = jit(idx, 8, 0.05, 0.25)
		p.IndirectCallFrac = 0.1
		p.BaseUpdateFrac = jit(idx, 9, 0.0, 0.15)
		p.LoadPairFrac = 0.08
		p.PrefetchFrac = 0.06
		p.ChaseFrac = jit(idx, 10, 0.0, 0.10)
		p.StrideFrac = jit(idx, 11, 0.4, 0.85)
		p.ZVAFrac = 0.02
		p.DataFootprint = uint64(jitInt(idx, 12, 1, 16)) << 20
	case ComputeFP:
		p.NumFuncs = jitInt(idx, 1, 4, 12)
		p.FuncBodySites = jitInt(idx, 2, 128, 256)
		p.FPFrac = 0.5
		p.LoadFrac = jit(idx, 3, 0.2, 0.3)
		p.StoreFrac = 0.08
		p.CondFrac = jit(idx, 5, 0.04, 0.10)
		p.CallFrac = 0.01
		p.BranchBias = jit(idx, 6, 0.96, 0.998)
		p.CondRegFrac = 0.1
		p.BranchOnLoadFrac = 0.15
		p.IndirectCallFrac = 0.02
		p.BaseUpdateFrac = jit(idx, 9, 0.04, 0.12)
		p.LoadPairFrac = 0.12
		p.PrefetchFrac = 0.08
		p.StrideFrac = jit(idx, 11, 0.7, 0.95)
		p.ZVAFrac = 0.01
		p.DataFootprint = uint64(jitInt(idx, 12, 4, 32)) << 20
	case Crypto:
		p.NumFuncs = jitInt(idx, 1, 3, 8)
		p.FuncBodySites = jitInt(idx, 2, 96, 192)
		p.LoadFrac = jit(idx, 3, 0.10, 0.20)
		p.StoreFrac = 0.06
		p.CondFrac = jit(idx, 5, 0.04, 0.08)
		p.CallFrac = 0.01
		p.BranchBias = 0.995
		p.CondRegFrac = 0.2
		p.BranchOnLoadFrac = 0.1
		p.IndirectCallFrac = 0.02
		p.BaseUpdateFrac = jit(idx, 9, 0.08, 0.25)
		p.LoadPairFrac = 0.15
		p.PrefetchFrac = 0.02
		p.StrideFrac = 0.9
		p.DataFootprint = 1 << 20
	case Server:
		p.NumFuncs = jitInt(idx, 1, 96, 192)
		p.FuncBodySites = jitInt(idx, 2, 48, 96)
		p.LoadFrac = jit(idx, 3, 0.18, 0.28)
		p.StoreFrac = jit(idx, 4, 0.06, 0.12)
		p.CondFrac = jit(idx, 5, 0.10, 0.18)
		p.CallFrac = jit(idx, 13, 0.08, 0.15)
		p.BranchBias = jit(idx, 6, 0.92, 0.99)
		p.CondRegFrac = jit(idx, 7, 0.3, 0.55)
		p.BranchOnLoadFrac = jit(idx, 8, 0.10, 0.45)
		p.IndirectCallFrac = jit(idx, 14, 0.15, 0.5)
		p.BaseUpdateFrac = jit(idx, 9, 0.02, 0.10)
		p.LoadPairFrac = 0.08
		p.PrefetchFrac = 0.05
		p.ChaseFrac = jit(idx, 10, 0.0, 0.05)
		p.StrideFrac = 0.45
		p.ZVAFrac = 0.03
		p.DataFootprint = uint64(jitInt(idx, 12, 2, 8)) << 20
		// Roughly one in five server traces exhibits the BLR-X30
		// dispatch idiom, forming the Fig. 5 call-stack subset.
		if idx%5 == 3 {
			p.BlrX30Frac = jit(idx, 15, 0.6, 0.95)
			// The affected traces are front-end bound (like Table 2's
			// server_001, IPC 2.25): light data pressure, so the
			// supply bubbles from bogus returns actually cost cycles.
			p.ChaseFrac = 0
			p.DataFootprint = 2 << 20
			p.StrideFrac = 0.75
			p.BranchBias = jit(idx, 16, 0.96, 0.995)
			p.BranchOnLoadFrac = 0.05
			// The dispatch sites behind BLR X30 are monomorphic, so
			// once classified correctly they predict perfectly —
			// giving the Fig. 5 subset its +3..7% IPC recovery.
			p.DispatchTargets = 1
			if p.CallFrac < 0.2 {
				p.CallFrac = 0.2
			}
			if p.IndirectCallFrac < 0.6 {
				p.IndirectCallFrac = 0.6
			}
		}
	}
	return p
}

// StressIdle returns an idle-heavy stress profile that is not part of the
// public suite: every load site walks a serialized pointer chase over a
// footprint far beyond the LLC, with near-zero memory-level parallelism and
// almost perfectly predictable branches. The core spends nearly all of its
// time stalled on one outstanding DRAM miss — the worst case for a
// tick-per-cycle simulation loop and the best case for the event-horizon
// cycle skipper, which is why the zero-allocation and skipper benchmarks
// pin it.
func StressIdle() Profile {
	return Profile{
		Name:            "stress_idle",
		Category:        Server,
		Seed:            0x1d7e,
		NumFuncs:        2,
		FuncBodySites:   64,
		LoopIterations:  50,
		CallDepth:       1,
		DispatchTargets: 1,
		LoadFrac:        0.30,
		StoreFrac:       0.02,
		CondFrac:        0.04,
		BranchBias:      0.995,
		RandomTakenProb: 0.30,
		CondRegFrac:     0.2,
		ChaseFrac:       1.0,
		DataFootprint:   64 << 20,
	}
}

// PublicSuite returns the 135 public-trace profiles.
func PublicSuite() []Profile {
	var out []Profile
	for i := 0; i < numComputeInt; i++ {
		out = append(out, PublicProfile(ComputeInt, i))
	}
	for i := 0; i < numComputeFP; i++ {
		out = append(out, PublicProfile(ComputeFP, i))
	}
	for i := 0; i < numCrypto; i++ {
		out = append(out, PublicProfile(Crypto, i))
	}
	for i := 0; i < numServer; i++ {
		out = append(out, PublicProfile(Server, i))
	}
	return out
}

// FindPublic returns the profile with the given trace name.
func FindPublic(name string) (Profile, bool) {
	for _, p := range PublicSuite() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
