package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// SubmitResult is what a completed job stream resolves to.
type SubmitResult struct {
	// Output is the complete rendered output, byte-identical to the batch
	// CLI run of the same spec.
	Output []byte
	// Served names what resolved the job: a tier name for a cache hit,
	// "computed" for a fresh run.
	Served string
	// ServerSeconds is the daemon-side wall clock from the done event.
	ServerSeconds float64
	// Key is the job's content address as reported by the daemon.
	Key string
}

// Client submits jobs to a daemon and decodes its event streams.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient; job
	// streams are long-lived, so any custom client must not set a Timeout
	// that covers the whole response body).
	HTTPClient *http.Client
	// OnEvent, when set, observes every event as it arrives (progress
	// display); the final result is still assembled and returned.
	OnEvent func(Event)
}

// Submit posts spec and follows the event stream to completion.
func (c *Client) Submit(spec JobSpec) (*SubmitResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Post(strings.TrimSuffix(c.BaseURL, "/")+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := bufio.NewReader(resp.Body).ReadString('\n')
		return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(msg))
	}

	res := &SubmitResult{}
	var out bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("submit: bad event line: %w", err)
		}
		if c.OnEvent != nil {
			c.OnEvent(ev)
		}
		switch ev.Type {
		case "queued":
			res.Key = ev.Key
		case "chunk":
			out.WriteString(ev.Text)
		case "done":
			res.Output = out.Bytes()
			res.Served = ev.Served
			res.ServerSeconds = ev.ElapsedSeconds
			return res, nil
		case "error":
			return nil, fmt.Errorf("job failed: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("submit: stream: %w", err)
	}
	return nil, fmt.Errorf("submit: stream ended without done event")
}

// Status fetches the daemon's status document.
func (c *Client) Status() (*Status, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := hc.Get(strings.TrimSuffix(c.BaseURL, "/") + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
