package tracestore

import (
	"encoding/binary"
	"testing"
	"unsafe"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/frame"
)

func TestHeaderRoundTrip(t *testing.T) {
	key := testKey(100)
	h := header{count: 123456, metaLen: 789, key: key}
	buf := encodeHeader(h)
	if len(buf) != headerSize {
		t.Fatalf("header size %d, want %d", len(buf), headerSize)
	}
	got, verdict := parseHeader(buf, key)
	if verdict != headerOK {
		t.Fatalf("verdict %v, want headerOK", verdict)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderKeyMismatchIsForeign(t *testing.T) {
	buf := encodeHeader(header{count: 1, key: testKey(101)})
	if _, verdict := parseHeader(buf, testKey(102)); verdict != headerForeign {
		t.Fatalf("key mismatch verdict %v, want headerForeign", verdict)
	}
}

func TestHeaderCorruption(t *testing.T) {
	key := testKey(103)
	base := encodeHeader(header{count: 10, metaLen: 5, key: key})

	for _, tc := range []struct {
		name string
		muck func(b []byte)
		want headerVerdict
	}{
		{"bad magic", func(b []byte) { b[0] = 'X' }, headerCorrupt},
		// A flipped count byte invalidates the header CRC.
		{"flipped count", func(b []byte) { b[16] ^= 0xff }, headerCorrupt},
		{"flipped crc", func(b []byte) { b[headerCRCOff] ^= 0xff }, headerCorrupt},
		{"future version", func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], FormatVersion+1)
			resealHeader(b)
		}, headerForeign},
		{"foreign layout", func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:16], layoutSig^1)
			resealHeader(b)
		}, headerForeign},
	} {
		buf := append([]byte(nil), base...)
		tc.muck(buf)
		if _, verdict := parseHeader(buf, key); verdict != tc.want {
			t.Errorf("%s: verdict %v, want %v", tc.name, verdict, tc.want)
		}
	}
}

// resealHeader recomputes the header CRC after a deliberate field edit, so
// the test exercises the semantic check rather than the checksum.
func resealHeader(b []byte) {
	crc := frame.Checksum(b[:headerCRCOff])
	binary.LittleEndian.PutUint32(b[headerCRCOff:headerCRCOff+4], crc)
}

func TestRecordBytesRoundTrip(t *testing.T) {
	recs := testRecords(17, 42)
	b := recordBytes(recs)
	if len(b) != 17*recordSize {
		t.Fatalf("byte view length %d", len(b))
	}
	// Mutating through the byte view must show through the struct view:
	// they alias the same memory, which is the zero-copy property.
	b[0] = 0xaa
	if recs[0].IP&0xff != 0xaa {
		t.Fatalf("views do not alias")
	}
}

func TestViewRecordsAlignment(t *testing.T) {
	// viewRecords reinterprets offset headerSize of a mapping; the struct
	// needs 8-byte alignment and the page offset guarantees it for any
	// page-aligned (or even 8-aligned) base.
	if headerSize%int(unsafe.Alignof(champtrace.Instruction{})) != 0 {
		t.Fatalf("headerSize %d not aligned for Instruction", headerSize)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	want := core.Stats{In: 1000, Out: 998, BaseUpdateLoads: 44, CondBranches: 120}
	b, err := encodeMeta(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeMeta(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("meta round trip: got %+v want %+v", got, want)
	}
}
