package cvp

import (
	"io"
	"testing"
)

// TestNextBatchZeroLength: a zero-length destination is a no-op on every
// batch source — (0, nil) mid-stream, nothing consumed — and the stream
// afterwards still delivers the remaining instructions.
func TestNextBatchZeroLength(t *testing.T) {
	want := randomInstrs(40, 11)
	slab := MakeBatch(len(want))
	for i, in := range want {
		in.CopyInto(&slab[i])
	}

	sources := map[string]BatchSource{
		"SliceSource":   NewSliceSource(want),
		"ValuesSource":  NewValuesSource(slab),
		"sourceBatcher": AsBatchSource(sourceOnly{NewSliceSource(want)}),
	}
	for name, bs := range sources {
		dst := MakeBatch(7)
		n, err := bs.NextBatch(dst)
		if err != nil || n != 7 {
			t.Fatalf("%s: first batch = (%d, %v), want (7, nil)", name, n, err)
		}
		for _, empty := range [][]Instruction{nil, {}} {
			if n, err := bs.NextBatch(empty); n != 0 || err != nil {
				t.Fatalf("%s: zero-length NextBatch = (%d, %v), want (0, nil)", name, n, err)
			}
		}
		got := 7
		for {
			n, err := bs.NextBatch(dst)
			for i := 0; i < n; i++ {
				if got >= len(want) || !sameInstr(&dst[i], want[got]) {
					t.Fatalf("%s: instruction %d lost or changed after zero-length pulls", name, got)
				}
				got++
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if n == 0 {
				t.Fatalf("%s: empty batch with nil error on a live stream", name)
			}
		}
		if got != len(want) {
			t.Fatalf("%s: zero-length pulls consumed instructions: got %d of %d", name, got, len(want))
		}
	}
}

// TestAsSourceBatchSizeOne: the degenerate adapter window still delivers
// the exact stream, and each pointer survives the one further Next call the
// contract promises.
func TestAsSourceBatchSizeOne(t *testing.T) {
	const n = 120
	want := randomInstrs(n, 12)
	src := AsSource(batchOnly{AsBatchSource(sourceOnly{NewSliceSource(want)})}, 1)
	var prev *Instruction
	for i := 0; ; i++ {
		in, err := src.Next()
		if err == io.EOF {
			if i != n {
				t.Fatalf("EOF after %d instructions, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !sameInstr(in, want[i]) {
			t.Fatalf("instruction %d differs with batchSize 1", i)
		}
		if prev != nil && !sameInstr(prev, want[i-1]) {
			t.Fatalf("pointer for instruction %d clobbered within its 1-call window", i-1)
		}
		prev = in
	}
}
