// Package btb implements the branch target machinery of the simulated
// front-end: a set-associative branch target buffer, a return address
// stack, an ITTAGE indirect-target predictor, and the combined target
// predictor that routes each branch type to the right structure (§4: 16K
// BTB, 64 KB ITTAGE).
package btb

import "tracerebase/internal/champtrace"

// Entry is one BTB entry.
type Entry struct {
	Target uint64
	Type   champtrace.BranchType
}

// BTB is a set-associative branch target buffer. All sets live in one flat
// slice: set s spans lines[s*ways : (s+1)*ways].
type BTB struct {
	lines   []btbLine
	setMask uint64
	tick    uint64
	ways    int
}

type btbLine struct {
	tag   uint64
	entry Entry
	valid bool
	lru   uint64
}

// NewBTB builds a BTB with the given total entries and associativity.
// entries/ways must be a power of two.
func NewBTB(entries, ways int) *BTB {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic("btb: entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: set count must be a power of two")
	}
	return &BTB{lines: make([]btbLine, sets*ways), setMask: uint64(sets - 1), ways: ways}
}

func (b *BTB) index(pc uint64) (int, uint64) {
	idx := (pc >> 2) & b.setMask
	return int(idx), pc >> 2 >> uint(popBits(b.setMask))
}

func popBits(mask uint64) int {
	n := 0
	for mask > 0 {
		mask >>= 1
		n++
	}
	return n
}

// Lookup returns the stored entry for pc.
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	setIdx, tag := b.index(pc)
	set := b.lines[setIdx*b.ways : (setIdx+1)*b.ways]
	b.tick++
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lru = b.tick
			return ln.entry, true
		}
	}
	return Entry{}, false
}

// Update installs or refreshes the entry for pc.
func (b *BTB) Update(pc uint64, e Entry) {
	setIdx, tag := b.index(pc)
	set := b.lines[setIdx*b.ways : (setIdx+1)*b.ways]
	b.tick++
	victim := 0
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.entry = e
			ln.lru = b.tick
			return
		}
		if !ln.valid {
			victim = i
			break
		}
		if ln.lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbLine{tag: tag, entry: e, valid: true, lru: b.tick}
}

// RAS is the return address stack. Pushes beyond the capacity wrap around
// (overwriting the oldest entry), like a hardware circular stack.
type RAS struct {
	stack []uint64
	top   int // number of live entries, capped at len(stack)
	pos   int // index one past the most recent push (circular)
}

// NewRAS returns a return address stack with the given capacity.
func NewRAS(size int) *RAS {
	if size <= 0 {
		panic("btb: RAS size must be positive")
	}
	return &RAS{stack: make([]uint64, size)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.pos] = addr
	r.pos = (r.pos + 1) % len(r.stack)
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop predicts and removes the most recent return address. An empty stack
// returns 0, false.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.pos = (r.pos - 1 + len(r.stack)) % len(r.stack)
	r.top--
	return r.stack[r.pos], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.top }
