package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// randomCVPInstr builds a structurally valid random CVP-1 instruction with
// plausible register/value relationships.
func randomCVPInstr(r *rand.Rand, pc uint64) *cvp.Instruction {
	in := &cvp.Instruction{
		PC:    pc,
		Class: cvp.InstClass(r.Intn(cvp.NumClasses)),
	}
	if in.Class.IsMem() {
		in.EffAddr = uint64(r.Int63())
		in.MemSize = []uint8{1, 2, 4, 8, 16, 64}[r.Intn(6)]
	}
	if in.Class.IsBranch() {
		in.Taken = r.Intn(2) == 0
		if in.Taken {
			in.Target = uint64(r.Int63())
		}
	}
	for i, n := 0, r.Intn(cvp.MaxSrcRegs+1); i < n; i++ {
		in.SrcRegs = append(in.SrcRegs, uint8(r.Intn(cvp.NumRegs)))
	}
	for i, n := 0, r.Intn(cvp.MaxDstRegs+1); i < n; i++ {
		in.DstRegs = append(in.DstRegs, uint8(r.Intn(cvp.NumRegs)))
		in.DstValues = append(in.DstValues, r.Uint64())
	}
	return in
}

func allOptionSets() []Options {
	sets := []Options{OptionsNone(), OptionsMemory(), OptionsBranch(), OptionsAll()}
	for _, imp := range Improvements {
		var o Options
		imp.Set(&o)
		sets = append(sets, o)
	}
	return sets
}

// TestQuickConverterStructuralInvariants: for any valid CVP-1 stream and
// any improvement set, every emitted ChampSim record is structurally sound.
func TestQuickConverterStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		instrs := make([]*cvp.Instruction, 200)
		pc := uint64(0x400000)
		for i := range instrs {
			instrs[i] = randomCVPInstr(r, pc)
			pc += 4
		}
		for _, opts := range allOptionSets() {
			c := New(opts)
			for _, in := range instrs {
				if err := in.Validate(); err != nil {
					t.Logf("generator produced invalid instruction: %v", err)
					return false
				}
				out := c.Convert(in)
				if len(out) < 1 || len(out) > 2 {
					t.Logf("opts %v: %d records for one instruction", opts, len(out))
					return false
				}
				if len(out) == 2 && !opts.BaseUpdate {
					t.Logf("opts %v: split without base-update", opts)
					return false
				}
				for _, rec := range out {
					if !checkRecord(t, rec, in, opts) {
						return false
					}
				}
			}
			st := c.Stats()
			if st.In != uint64(len(instrs)) {
				t.Logf("opts %v: In=%d", opts, st.In)
				return false
			}
			if st.Out < st.In {
				t.Logf("opts %v: Out=%d < In=%d", opts, st.Out, st.In)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func checkRecord(t *testing.T, rec *champtrace.Instruction, in *cvp.Instruction, opts Options) bool {
	// Branch flag must mirror the CVP class for the primary record.
	if rec.IsBranch && !in.Class.IsBranch() {
		t.Logf("non-branch CVP became branch record")
		return false
	}
	// Loads/stores must not lose their memory nature (primary record).
	if in.Class.IsBranch() {
		if rec.IsLoad() || rec.IsStore() {
			t.Logf("branch with memory slots")
			return false
		}
		if !rec.Taken == in.Taken {
			t.Logf("taken flag lost")
			return false
		}
		bt := champtrace.Classify(rec, champtrace.RulesPatched)
		if bt == champtrace.NotBranch || bt == champtrace.BranchOther {
			t.Logf("branch classifies as %v (srcs %v dsts %v, cvp class %v)", bt, rec.SrcRegs, rec.DestRegs, in.Class)
			return false
		}
	}
	// Memory slots are cacheline-coherent: at most 2 source lines and
	// they differ.
	if rec.SrcMem[0] != 0 && rec.SrcMem[1] != 0 {
		if rec.SrcMem[0]/64 == rec.SrcMem[1]/64 {
			t.Logf("duplicate cacheline in SrcMem")
			return false
		}
		if !opts.MemFootprint {
			t.Logf("second address without mem-footprint")
			return false
		}
	}
	return true
}

// TestQuickConverterDeterminism: converting the same stream twice yields
// identical records.
func TestQuickConverterDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		instrs := make([]*cvp.Instruction, 100)
		pc := uint64(0x1000)
		for i := range instrs {
			instrs[i] = randomCVPInstr(r, pc)
			pc += 4
		}
		a, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
		if err != nil {
			return false
		}
		b, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if *a[i] != *b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickImprovementMonotonicity: enabling base-update never REMOVES
// records, and disabling all improvements reproduces record-per-instruction
// conversion.
func TestQuickRecordCounts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		instrs := make([]*cvp.Instruction, 150)
		pc := uint64(0x2000)
		for i := range instrs {
			instrs[i] = randomCVPInstr(r, pc)
			pc += 4
		}
		plain, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsNone())
		if err != nil || len(plain) != len(instrs) {
			return false
		}
		split, _, err := ConvertAll(cvp.NewSliceSource(instrs), Options{BaseUpdate: true})
		if err != nil || len(split) < len(instrs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyTotal enumerates every register-usage profile and checks that
// classification is total, deterministic, and that the two rule sets only
// disagree on the documented cases (conditional-with-other-sources and
// IP-reading indirects).
func TestClassifyTotal(t *testing.T) {
	for bits := 0; bits < 64; bits++ {
		in := &champtrace.Instruction{IP: 0x1000, IsBranch: true}
		if bits&1 != 0 {
			in.AddSrcReg(champtrace.RegInstructionPointer)
		}
		if bits&2 != 0 {
			in.AddSrcReg(champtrace.RegStackPointer)
		}
		if bits&4 != 0 {
			in.AddSrcReg(champtrace.RegFlags)
		}
		if bits&8 != 0 {
			in.AddSrcReg(champtrace.RegOther)
		}
		if bits&16 != 0 {
			in.AddDestReg(champtrace.RegInstructionPointer)
		}
		if bits&32 != 0 {
			in.AddDestReg(champtrace.RegStackPointer)
		}
		orig := champtrace.Classify(in, champtrace.RulesOriginal)
		patched := champtrace.Classify(in, champtrace.RulesPatched)
		if orig > champtrace.BranchOther || patched > champtrace.BranchOther {
			t.Fatalf("bits %06b: classification out of range", bits)
		}
		if orig != patched {
			readsIP := bits&1 != 0
			readsOther := bits&8 != 0
			if !(readsIP && readsOther) {
				t.Errorf("bits %06b: rule sets disagree (%v vs %v) outside the documented overlap",
					bits, orig, patched)
			}
		}
	}
}
