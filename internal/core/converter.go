package core

import (
	"io"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// CachelineSize is the cacheline granularity assumed by the mem-footprint
// improvement and by DC ZVA alignment.
const CachelineSize = 64

// ConverterVersion identifies the conversion algorithm for content
// addressing. The compiled-trace store keys converted slabs on it instead
// of on the build fingerprint, so slabs survive rebuilds that leave the
// converter untouched. Bump it whenever a change to the converter can alter
// the records produced for a given (instruction stream, Options) pair;
// slabs keyed under the old version then become unreachable instead of
// stale. The slab-transparency conformance oracle (rebase -selftest)
// catches a forgotten bump by differencing store-on against store-off
// sweeps.
const ConverterVersion = 1

// Stats accumulates conversion statistics. The percentages quoted in §4.2
// of the paper (9.4% memory instructions without destinations, 5.2%
// multi-destination loads, 0.3% cacheline-crossing accesses, 0.87%
// X30-consumer instructions) are computed from these counters.
type Stats struct {
	// In counts CVP-1 instructions consumed; Out counts ChampSim records
	// produced (Out > In when base-update splits micro-ops).
	In, Out uint64
	// MemNoDst counts memory instructions with no destination register
	// (prefetch loads, plain stores).
	MemNoDst uint64
	// MultiDstLoads counts loads with two or more destination registers.
	MultiDstLoads uint64
	// BaseUpdateLoads and BaseUpdateStores count memory instructions
	// inferred to perform base-register writeback.
	BaseUpdateLoads, BaseUpdateStores uint64
	// PreIndex and PostIndex break base updates down by addressing mode.
	PreIndex, PostIndex uint64
	// CrossLine counts accesses spanning two cachelines.
	CrossLine uint64
	// DCZVA counts 64-byte cacheline-zeroing stores.
	DCZVA uint64
	// Returns, DirectCalls, IndirectCalls, DirectJumps, IndirectJumps and
	// CondBranches count the converted branch mix.
	Returns, DirectCalls, IndirectCalls, DirectJumps, IndirectJumps, CondBranches uint64
	// ReadWriteLRBranches counts unconditional branches that both read
	// and write X30 — the instructions the original converter
	// misclassifies as returns (§3.2.1).
	ReadWriteLRBranches uint64
	// CondWithSrc counts conditional branches carrying CVP-1 source
	// registers (cb(n)z / tb(n)z style).
	CondWithSrc uint64
	// FlagDstAdded counts ALU/FP instructions given the flag register as
	// destination by the flag-reg improvement.
	FlagDstAdded uint64
}

// Converter translates a stream of CVP-1 instructions into ChampSim trace
// records. It is stateful: the addressing-mode inference tracks the values
// last written to each architectural register, exactly like the CVP trace
// reader the heuristic was designed for. A Converter must be fed a single
// trace from its beginning.
type Converter struct {
	opts  Options
	regs  regTracker
	stats Stats
}

// New returns a Converter applying the given improvements.
func New(opts Options) *Converter { return &Converter{opts: opts} }

// Options returns the improvement set the converter applies.
func (c *Converter) Options() Options { return c.opts }

// Stats returns the statistics accumulated so far.
func (c *Converter) Stats() Stats { return c.stats }

// ConvertAppend translates one CVP-1 instruction, appending the resulting
// one or two ChampSim records to dst and returning the extended slice. Two
// records are produced when the base-update improvement splits a writeback
// memory access into an address-update ALU micro-op and a memory micro-op.
// This is the allocation-free core of the converter: records are plain
// values, so a caller reusing dst's capacity performs no heap work.
func (c *Converter) ConvertAppend(dst []champtrace.Instruction, in *cvp.Instruction) []champtrace.Instruction {
	c.stats.In++
	before := len(dst)
	switch {
	case in.Class.IsBranch():
		dst = append(dst, c.convertBranch(in))
	case in.Class.IsMem():
		dst = c.convertMem(dst, in)
	default:
		dst = append(dst, c.convertALU(in))
	}
	c.regs.update(in)
	c.stats.Out += uint64(len(dst) - before)
	return dst
}

// Convert translates one CVP-1 instruction into one or two individually
// allocated ChampSim records. See ConvertAppend for the allocation-free
// variant.
func (c *Converter) Convert(in *cvp.Instruction) []*champtrace.Instruction {
	var buf [2]champtrace.Instruction
	recs := c.ConvertAppend(buf[:0], in)
	out := make([]*champtrace.Instruction, len(recs))
	for i := range recs {
		rec := recs[i]
		out[i] = &rec
	}
	return out
}

// flagRegClasses reports whether the flag-reg improvement applies to the
// class: ALU, slow ALU, FP, and undefined (syscall-like) instructions. The
// paper notes marking syscalls as flag producers is slightly pessimistic
// but harmless.
func flagRegClass(cl cvp.InstClass) bool {
	switch cl {
	case cvp.ClassALU, cvp.ClassSlowALU, cvp.ClassFP, cvp.ClassUndef:
		return true
	}
	return false
}

func (c *Converter) convertALU(in *cvp.Instruction) champtrace.Instruction {
	rec := champtrace.Instruction{IP: in.PC}
	addSrcs(&rec, in.SrcRegs)
	switch {
	case len(in.DstRegs) > 0:
		// Non-branches keep a single destination register in the
		// original converter; multi-destination handling only matters
		// for memory instructions (see convertMem).
		rec.AddDestReg(MapReg(in.DstRegs[0]))
	case c.opts.FlagReg && flagRegClass(in.Class):
		rec.AddDestReg(champtrace.RegFlags)
		c.stats.FlagDstAdded++
	}
	return rec
}

func (c *Converter) convertMem(dst []champtrace.Instruction, in *cvp.Instruction) []champtrace.Instruction {
	if len(in.DstRegs) == 0 {
		c.stats.MemNoDst++
	}
	if in.IsLoad() && len(in.DstRegs) >= 2 {
		c.stats.MultiDstLoads++
	}

	inf := inference{mode: AddrPlain}
	if c.opts.BaseUpdate || c.opts.MemFootprint {
		inf = inferAddrMode(in, &c.regs)
	}
	if inf.mode.IsBaseUpdate() {
		if in.IsLoad() {
			c.stats.BaseUpdateLoads++
		} else {
			c.stats.BaseUpdateStores++
		}
		if inf.mode == AddrPreIndex {
			c.stats.PreIndex++
		} else {
			c.stats.PostIndex++
		}
	}
	split := c.opts.BaseUpdate && inf.mode.IsBaseUpdate()

	mem := champtrace.Instruction{IP: in.PC}
	effAddr, totalSize := c.footprint(in, inf)

	if c.opts.MemRegs {
		addSrcs(&mem, in.SrcRegs)
		for _, d := range in.DstRegs {
			if split && d == inf.base {
				continue // the ALU micro-op owns the base register
			}
			mem.AddDestReg(MapReg(d))
		}
	} else {
		// Original converter: multi-destination loads (writeback, load
		// pairs, vector loads) fold EVERY CVP destination into the
		// sources (this is how LDR X1,[X0,#12]! ends up reading both
		// X0 and X1), and all memory instructions keep exactly one
		// destination — the first CVP destination, or X0 when there
		// is none.
		addSrcs(&mem, in.SrcRegs)
		if len(in.DstRegs) >= 2 {
			for _, d := range in.DstRegs {
				if !mem.ReadsReg(MapReg(d)) {
					mem.AddSrcReg(MapReg(d))
				}
			}
		}
		dst := RegX0Mapped
		picked := false
		for _, d := range in.DstRegs {
			if split && d == inf.base {
				continue
			}
			dst = MapReg(d)
			picked = true
			break
		}
		if picked || !split {
			mem.AddDestReg(dst)
		}
	}

	if in.IsLoad() {
		mem.AddSrcMem(effAddr)
	} else {
		mem.AddDestMem(effAddr)
	}
	if c.opts.MemFootprint && crossesLine(effAddr, totalSize) {
		second := (effAddr/CachelineSize + 1) * CachelineSize
		c.stats.CrossLine++
		if in.IsLoad() {
			mem.AddSrcMem(second)
		} else {
			mem.AddDestMem(second)
		}
	}

	if !split {
		return append(dst, mem)
	}

	// Base-update split: the ALU micro-op reads and writes the base
	// register; the memory micro-op keeps the remaining registers. For
	// pre-indexing the update happens before the access (ALU first, at
	// the original PC, memory at PC+2); for post-indexing the order is
	// reversed.
	base := MapReg(inf.base)
	alu := champtrace.Instruction{}
	alu.AddSrcReg(base)
	alu.AddDestReg(base)
	if !mem.ReadsReg(base) {
		mem.AddSrcReg(base)
	}
	if inf.mode == AddrPreIndex {
		alu.IP = in.PC
		mem.IP = in.PC + 2
		return append(dst, alu, mem)
	}
	alu.IP = in.PC + 2
	return append(dst, mem, alu)
}

// footprint returns the (possibly realigned) effective address and the
// total transfer size of the instruction. Without the mem-footprint
// improvement the size is irrelevant — the original converter emits a
// single address regardless.
func (c *Converter) footprint(in *cvp.Instruction, inf inference) (addr uint64, size uint64) {
	addr = in.EffAddr
	size = uint64(in.MemSize)
	if size == 0 {
		size = 1
	}
	if !c.opts.MemFootprint {
		return addr, size
	}
	if in.IsStore() && in.MemSize == CachelineSize {
		// DC ZVA zeroes one naturally aligned cacheline. The
		// architecture allows an unaligned address operand, so the
		// converter always realigns (§3.1.3).
		c.stats.DCZVA++
		return addr &^ uint64(CachelineSize-1), CachelineSize
	}
	if in.IsLoad() {
		// Total size = per-register transfer size × number of
		// registers actually populated from memory (excluding an
		// inferred base-update register).
		data := len(in.DstRegs)
		if inf.mode.IsBaseUpdate() {
			data--
		}
		if data < 1 {
			data = 1 // prefetch loads still touch one element
		}
		size *= uint64(data)
	}
	return addr, size
}

func crossesLine(addr, size uint64) bool {
	if size == 0 {
		return false
	}
	return addr/CachelineSize != (addr+size-1)/CachelineSize
}

func (c *Converter) convertBranch(in *cvp.Instruction) champtrace.Instruction {
	rec := champtrace.Instruction{IP: in.PC, IsBranch: true, Taken: in.Taken}

	if in.Class == cvp.ClassCondBranch {
		c.stats.CondBranches++
		rec.AddSrcReg(champtrace.RegInstructionPointer)
		if c.opts.BranchRegs && len(in.SrcRegs) > 0 {
			// cb(n)z / tb(n)z: keep the CVP source and drop the
			// flag register, restoring the producer dependency.
			// Requires champtrace.RulesPatched in the simulator.
			c.stats.CondWithSrc++
			addSrcs(&rec, in.SrcRegs)
		} else {
			rec.AddSrcReg(champtrace.RegFlags)
		}
		rec.AddDestReg(champtrace.RegInstructionPointer)
		return rec
	}

	readsLR := in.ReadsReg(cvp.RegLR)
	writesLR := in.WritesReg(cvp.RegLR)
	if readsLR && writesLR {
		c.stats.ReadWriteLRBranches++
	}

	isReturn := false
	if c.opts.CallStack {
		// §3.2.1: only unconditional branches that read X30 and write
		// no register at all are returns.
		isReturn = readsLR && len(in.DstRegs) == 0
	} else {
		// Original converter: any branch reading X30 is a return —
		// including BLR-style indirect calls that also write it.
		isReturn = readsLR
	}

	switch {
	case isReturn:
		c.stats.Returns++
		rec.AddSrcReg(champtrace.RegStackPointer)
		rec.AddDestReg(champtrace.RegInstructionPointer)
		rec.AddDestReg(champtrace.RegStackPointer)
	case writesLR: // a call, direct or indirect by CVP class
		rec.AddSrcReg(champtrace.RegInstructionPointer)
		rec.AddSrcReg(champtrace.RegStackPointer)
		rec.AddDestReg(champtrace.RegInstructionPointer)
		rec.AddDestReg(champtrace.RegStackPointer)
		// Note: X30 cannot also be kept as a destination — both slots
		// are needed for IP and SP (§3.2.2 known limitation).
		if in.Class == cvp.ClassUncondIndirect {
			c.stats.IndirectCalls++
			c.addIndirectSources(&rec, in)
		} else {
			c.stats.DirectCalls++
		}
	case in.Class == cvp.ClassUncondIndirect:
		c.stats.IndirectJumps++
		rec.AddDestReg(champtrace.RegInstructionPointer)
		c.addIndirectSources(&rec, in)
	default: // direct jump
		c.stats.DirectJumps++
		rec.AddSrcReg(champtrace.RegInstructionPointer)
		rec.AddDestReg(champtrace.RegInstructionPointer)
	}
	return rec
}

// addIndirectSources attaches the register(s) conveying "reads other" to an
// indirect branch. The original converter uses the artificial X56; the
// branch-regs improvement carries the actual CVP-1 sources so the
// dependency on the producer survives (falling back to X56 for the rare
// indirect with no recorded source).
func (c *Converter) addIndirectSources(rec *champtrace.Instruction, in *cvp.Instruction) {
	if c.opts.BranchRegs && len(in.SrcRegs) > 0 {
		addSrcs(rec, in.SrcRegs)
		return
	}
	rec.AddSrcReg(champtrace.RegOther)
}

// addSrcs maps and appends CVP source registers, silently truncating to the
// four slots ChampSim provides (§3.1.1 footnote: a handful of instructions
// such as compare-and-swap pair read more; the first four are kept).
func addSrcs(rec *champtrace.Instruction, srcs []uint8) {
	for _, s := range srcs {
		if !rec.AddSrcReg(MapReg(s)) {
			return
		}
	}
}

// ConvertAll drains src through a new Converter and returns the ChampSim
// records together with the conversion statistics.
func ConvertAll(src cvp.Source, opts Options) ([]*champtrace.Instruction, Stats, error) {
	c := New(opts)
	var out []*champtrace.Instruction
	for {
		in, err := src.Next()
		if err == io.EOF {
			return out, c.Stats(), nil
		}
		if err != nil {
			return out, c.Stats(), err
		}
		out = append(out, c.Convert(in)...)
	}
}

// ConvertAllBatch converts src to completion into one contiguous value
// slab — the representation to pair with champtrace.NewValuesSource when
// the same converted trace is simulated repeatedly. Unlike ConvertAll it
// performs no per-record boxing: the whole trace costs a handful of slab
// growths.
func ConvertAllBatch(src cvp.Source, opts Options) ([]champtrace.Instruction, Stats, error) {
	// Conversion is nearly 1:1, so sizing the slab off the source length
	// (when known) turns a dozen grow-and-copy cycles into at most one.
	hint := 1024
	if l, ok := src.(interface{ Len() int }); ok && l.Len() > hint {
		hint = l.Len() + l.Len()/16
	}
	return ConvertAllInto(make([]champtrace.Instruction, 0, hint), src, opts)
}

// ConvertAllInto is ConvertAllBatch appending into dst (rewound to length
// zero), so callers recycling full-trace slabs — the trace store's
// conversion scratch pool — pay no per-conversion slab allocation once the
// scratch has grown to trace size. The returned slice shares dst's backing
// array unless conversion outgrew it.
func ConvertAllInto(dst []champtrace.Instruction, src cvp.Source, opts Options) ([]champtrace.Instruction, Stats, error) {
	c := New(opts)
	out := dst[:0]
	for {
		in, err := src.Next()
		if err == io.EOF {
			return out, c.Stats(), nil
		}
		if err != nil {
			return out, c.Stats(), err
		}
		out = c.ConvertAppend(out, in)
	}
}

// ConvertStream converts src and writes the records to w, returning the
// statistics. It mirrors the artifact's cvp2champsim CLI data path.
func ConvertStream(src cvp.Source, w *champtrace.Writer, opts Options) (Stats, error) {
	c := New(opts)
	buf := make([]champtrace.Instruction, 0, 4)
	for {
		in, err := src.Next()
		if err == io.EOF {
			return c.Stats(), nil
		}
		if err != nil {
			return c.Stats(), err
		}
		buf = c.ConvertAppend(buf[:0], in)
		for i := range buf {
			if err := w.Write(&buf[i]); err != nil {
				return c.Stats(), err
			}
		}
	}
}
