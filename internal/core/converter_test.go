package core

import (
	"fmt"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// ldrPreIndex models LDR X1, [X0, #12]! with X0 previously holding base:
// the effective address is base+12 and X0 is written with base+12.
func ldrPreIndex(pc, base uint64) *cvp.Instruction {
	return &cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: base + 12, MemSize: 8,
		SrcRegs:   []uint8{0},
		DstRegs:   []uint8{1, 0},
		DstValues: []uint64{0x1111, base + 12},
	}
}

// ldrPostIndex models LDR X1, [X0], #8: effective address is the old base
// and X0 is written with base+8.
func ldrPostIndex(pc, base uint64) *cvp.Instruction {
	return &cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: base, MemSize: 8,
		SrcRegs:   []uint8{0},
		DstRegs:   []uint8{1, 0},
		DstValues: []uint64{0x2222, base + 8},
	}
}

// ldp models LDP X1, X0, [X0]: two registers populated from memory, no base
// update — the value landing in X0 is a random memory value.
func ldp(pc, base uint64) *cvp.Instruction {
	return &cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: base, MemSize: 8,
		SrcRegs:   []uint8{0},
		DstRegs:   []uint8{1, 0},
		DstValues: []uint64{0x3333, 0xabcdef0123456789},
	}
}

func seedReg(c *Converter, reg uint8, val uint64) {
	// Feed an ALU instruction writing reg so the tracker knows its value.
	c.Convert(&cvp.Instruction{
		PC: 0x10, Class: cvp.ClassALU,
		DstRegs: []uint8{reg}, DstValues: []uint64{val},
	})
}

func TestOriginalMemConversion(t *testing.T) {
	// §3.1: the original converter turns LDR X1,[X0,#12]! into a load
	// with sources {X0, X1}, destination {X1}, one memory source.
	c := New(OptionsNone())
	out := c.Convert(ldrPreIndex(0x1000, 0x8000))
	if len(out) != 1 {
		t.Fatalf("original converter split the instruction: %d records", len(out))
	}
	rec := out[0]
	if !rec.ReadsReg(MapReg(0)) || !rec.ReadsReg(MapReg(1)) {
		t.Errorf("want sources X0 and X1, got %v", rec.SrcRegs)
	}
	if !rec.WritesReg(MapReg(1)) || rec.WritesReg(MapReg(0)) {
		t.Errorf("want single destination X1, got %v", rec.DestRegs)
	}
	if rec.SrcMem[0] != 0x8000+12 || rec.SrcMem[1] != 0 {
		t.Errorf("want single memory source %#x, got %v", 0x8000+12, rec.SrcMem)
	}
	if rec.IsBranch {
		t.Error("load marked as branch")
	}
}

func TestOriginalPadsX0(t *testing.T) {
	// Prefetch loads and plain stores have no CVP destination; the
	// original converter pads X0, creating spurious dependencies.
	c := New(OptionsNone())
	st := &cvp.Instruction{PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x9000, MemSize: 8, SrcRegs: []uint8{2, 3}}
	rec := c.Convert(st)[0]
	if !rec.WritesReg(RegX0Mapped) {
		t.Errorf("original converter should pad X0, dests = %v", rec.DestRegs)
	}
	if !rec.IsStore() || rec.IsLoad() {
		t.Error("store slots wrong")
	}

	// mem-regs removes the padding.
	c2 := New(Options{MemRegs: true})
	rec2 := c2.Convert(st)[0]
	for _, d := range rec2.DestRegs {
		if d != champtrace.RegInvalid {
			t.Errorf("mem-regs should leave no destination, got %v", rec2.DestRegs)
		}
	}
	if c2.Stats().MemNoDst != 1 {
		t.Errorf("MemNoDst = %d, want 1", c2.Stats().MemNoDst)
	}
}

func TestMemRegsKeepsAllDests(t *testing.T) {
	c := New(Options{MemRegs: true})
	rec := c.Convert(ldrPreIndex(0x1000, 0x8000))[0]
	if !rec.WritesReg(MapReg(0)) || !rec.WritesReg(MapReg(1)) {
		t.Errorf("mem-regs should keep X0 and X1 as destinations, got %v", rec.DestRegs)
	}
	// And sources are only the true CVP sources.
	if rec.ReadsReg(MapReg(1)) {
		t.Errorf("mem-regs should not add destinations as sources, got %v", rec.SrcRegs)
	}
	if c.Stats().MultiDstLoads != 1 {
		t.Errorf("MultiDstLoads = %d, want 1", c.Stats().MultiDstLoads)
	}
}

func TestBaseUpdatePreIndexSplit(t *testing.T) {
	c := New(Options{BaseUpdate: true, MemRegs: true})
	seedReg(c, 0, 0x8000)
	out := c.Convert(ldrPreIndex(0x1000, 0x8000))
	if len(out) != 2 {
		t.Fatalf("pre-index load should split into 2 micro-ops, got %d", len(out))
	}
	alu, mem := out[0], out[1]
	// Pre-index: ALU first at PC, memory at PC+2.
	if alu.IP != 0x1000 || mem.IP != 0x1002 {
		t.Errorf("micro-op PCs = %#x, %#x; want 0x1000, 0x1002", alu.IP, mem.IP)
	}
	if alu.IsLoad() || alu.IsStore() || alu.IsBranch {
		t.Error("ALU micro-op has memory/branch attributes")
	}
	if !alu.ReadsReg(MapReg(0)) || !alu.WritesReg(MapReg(0)) {
		t.Errorf("ALU micro-op should read+write the base, srcs=%v dsts=%v", alu.SrcRegs, alu.DestRegs)
	}
	if !mem.IsLoad() {
		t.Error("memory micro-op lost its memory source")
	}
	if !mem.ReadsReg(MapReg(0)) {
		t.Error("memory micro-op should read the updated base")
	}
	if mem.WritesReg(MapReg(0)) {
		t.Error("base register should belong to the ALU micro-op only")
	}
	if !mem.WritesReg(MapReg(1)) {
		t.Error("memory micro-op lost the loaded register X1")
	}
	st := c.Stats()
	if st.BaseUpdateLoads != 1 || st.PreIndex != 1 || st.PostIndex != 0 {
		t.Errorf("stats = %+v, want 1 pre-index base-update load", st)
	}
	if st.Out != st.In+1 {
		t.Errorf("Out = %d, In = %d; split should add exactly one record", st.Out, st.In)
	}
}

func TestBaseUpdatePostIndexSplit(t *testing.T) {
	c := New(Options{BaseUpdate: true, MemRegs: true})
	seedReg(c, 0, 0x8000)
	out := c.Convert(ldrPostIndex(0x1000, 0x8000))
	if len(out) != 2 {
		t.Fatalf("post-index load should split into 2 micro-ops, got %d", len(out))
	}
	mem, alu := out[0], out[1]
	// Post-index: memory first at PC, ALU at PC+2.
	if mem.IP != 0x1000 || alu.IP != 0x1002 {
		t.Errorf("micro-op PCs = %#x, %#x; want 0x1000, 0x1002", mem.IP, alu.IP)
	}
	if !mem.IsLoad() || alu.IsLoad() {
		t.Error("order wrong: memory micro-op must come first for post-index")
	}
	if c.Stats().PostIndex != 1 {
		t.Errorf("PostIndex = %d, want 1", c.Stats().PostIndex)
	}
}

func TestLoadPairNotSplit(t *testing.T) {
	// LDP X1,X0,[X0] writes X0 from MEMORY; the tracked old value of X0
	// equals the effective address, but the new value is far away, so no
	// base update may be inferred.
	c := New(Options{BaseUpdate: true, MemRegs: true})
	seedReg(c, 0, 0x8000)
	out := c.Convert(ldp(0x1000, 0x8000))
	if len(out) != 1 {
		t.Fatalf("LDP without writeback must not split, got %d records", len(out))
	}
	if !out[0].WritesReg(MapReg(0)) || !out[0].WritesReg(MapReg(1)) {
		t.Errorf("LDP should keep both destinations, got %v", out[0].DestRegs)
	}
	if c.Stats().BaseUpdateLoads != 0 {
		t.Error("LDP counted as base update")
	}
}

func TestPostIndexLookAlikeRejectedByTrackedValue(t *testing.T) {
	// A load whose memory value lands within the immediate window of the
	// effective address looks like a post-index update — unless the
	// tracked old base value contradicts it.
	c := New(Options{BaseUpdate: true})
	seedReg(c, 0, 0x4000) // old X0 != effective address
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x8000, MemSize: 8,
		SrcRegs:   []uint8{0},
		DstRegs:   []uint8{0},
		DstValues: []uint64{0x8008}, // within ±512 of EA, but old base says no
	}
	if out := c.Convert(in); len(out) != 1 {
		t.Fatalf("look-alike split into %d records despite contradicting tracked value", len(out))
	}
}

func TestStoreBaseUpdate(t *testing.T) {
	// STR X1, [X0], #16 — store with post-index writeback: CVP records
	// X0 as a destination holding base+16.
	c := New(Options{BaseUpdate: true, MemRegs: true})
	seedReg(c, 0, 0x8000)
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x8000, MemSize: 8,
		SrcRegs:   []uint8{1, 0},
		DstRegs:   []uint8{0},
		DstValues: []uint64{0x8010},
	}
	out := c.Convert(in)
	if len(out) != 2 {
		t.Fatalf("store writeback should split, got %d records", len(out))
	}
	if !out[0].IsStore() {
		t.Error("store micro-op must come first for post-index")
	}
	if c.Stats().BaseUpdateStores != 1 {
		t.Errorf("BaseUpdateStores = %d, want 1", c.Stats().BaseUpdateStores)
	}
}

func TestStoreExclusiveNotBaseUpdate(t *testing.T) {
	// STXR W2, X1, [X0]: the status destination W2 is not a source, so it
	// can never be inferred as a base.
	c := New(Options{BaseUpdate: true, MemRegs: true})
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x8000, MemSize: 8,
		SrcRegs:   []uint8{1, 0},
		DstRegs:   []uint8{2},
		DstValues: []uint64{0},
	}
	if out := c.Convert(in); len(out) != 1 {
		t.Fatalf("store-exclusive split into %d records", len(out))
	}
	if c.Stats().BaseUpdateStores != 0 {
		t.Error("store-exclusive inferred as base update")
	}
}

func TestMemFootprintCrossLine(t *testing.T) {
	// An 8-byte access at line offset 60 crosses into the next line.
	c := New(Options{MemFootprint: true})
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x803c, MemSize: 8,
		SrcRegs: []uint8{0}, DstRegs: []uint8{1}, DstValues: []uint64{7},
	}
	rec := c.Convert(in)[0]
	if rec.SrcMem[0] != 0x803c || rec.SrcMem[1] != 0x8040 {
		t.Errorf("want both cachelines 0x803c and 0x8040, got %v", rec.SrcMem)
	}
	if c.Stats().CrossLine != 1 {
		t.Errorf("CrossLine = %d, want 1", c.Stats().CrossLine)
	}
	// Without the improvement only one address is emitted.
	c2 := New(OptionsNone())
	rec2 := c2.Convert(in)[0]
	if rec2.SrcMem[1] != 0 {
		t.Errorf("original converter added a second address: %v", rec2.SrcMem)
	}
}

func TestMemFootprintLoadPairSize(t *testing.T) {
	// LDP at offset 56 transfers 16 bytes total (2 regs × 8B) and crosses
	// the line; a single-register load at the same address does not.
	c := New(Options{MemFootprint: true, MemRegs: true})
	pair := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x8038, MemSize: 8,
		SrcRegs: []uint8{0}, DstRegs: []uint8{1, 2}, DstValues: []uint64{1, 2},
	}
	rec := c.Convert(pair)[0]
	if rec.SrcMem[1] != 0x8040 {
		t.Errorf("load pair should cross into 0x8040, got %v", rec.SrcMem)
	}
	single := &cvp.Instruction{
		PC: 0x1004, Class: cvp.ClassLoad, EffAddr: 0x8038, MemSize: 8,
		SrcRegs: []uint8{0}, DstRegs: []uint8{1}, DstValues: []uint64{1},
	}
	rec2 := c.Convert(single)[0]
	if rec2.SrcMem[1] != 0 {
		t.Errorf("single-register load should not cross, got %v", rec2.SrcMem)
	}
}

func TestMemFootprintBaseUpdateExcluded(t *testing.T) {
	// A pre-index LDR (one data register + base writeback) at offset 56
	// transfers 8 bytes, not 16: the base register is not populated from
	// memory. Getting this wrong is the CVP-1 simulator bug described in
	// the introduction.
	c := New(Options{MemFootprint: true, MemRegs: true})
	seedReg(c, 0, 0x8000)
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x8038, MemSize: 8,
		SrcRegs:   []uint8{0},
		DstRegs:   []uint8{1, 0},
		DstValues: []uint64{7, 0x8038}, // pre-index: new base == EA
	}
	rec := c.Convert(in)[0]
	if rec.SrcMem[1] != 0 {
		t.Errorf("base-update register inflated the footprint: %v", rec.SrcMem)
	}
}

func TestDCZVAAlignment(t *testing.T) {
	c := New(Options{MemFootprint: true})
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x8011, MemSize: 64,
		SrcRegs: []uint8{0},
	}
	rec := c.Convert(in)[0]
	if rec.DestMem[0] != 0x8000 {
		t.Errorf("DC ZVA address = %#x, want aligned 0x8000", rec.DestMem[0])
	}
	if rec.DestMem[1] != 0 {
		t.Errorf("DC ZVA must touch a single cacheline, got %v", rec.DestMem)
	}
	if c.Stats().DCZVA != 1 {
		t.Errorf("DCZVA = %d, want 1", c.Stats().DCZVA)
	}
}

func TestFlagRegImprovement(t *testing.T) {
	cmp := &cvp.Instruction{PC: 0x1000, Class: cvp.ClassALU, SrcRegs: []uint8{1, 2}}
	// Original: no destination at all.
	rec := New(OptionsNone()).Convert(cmp)[0]
	for _, d := range rec.DestRegs {
		if d != champtrace.RegInvalid {
			t.Errorf("original converter gave CMP a destination: %v", rec.DestRegs)
		}
	}
	// flag-reg: FLAGS becomes the destination.
	c := New(Options{FlagReg: true})
	rec2 := c.Convert(cmp)[0]
	if !rec2.WritesReg(champtrace.RegFlags) {
		t.Errorf("flag-reg should add FLAGS destination, got %v", rec2.DestRegs)
	}
	if c.Stats().FlagDstAdded != 1 {
		t.Errorf("FlagDstAdded = %d, want 1", c.Stats().FlagDstAdded)
	}
	// FP compares too.
	fcmp := &cvp.Instruction{PC: 0x1004, Class: cvp.ClassFP, SrcRegs: []uint8{33, 34}}
	if rec3 := c.Convert(fcmp)[0]; !rec3.WritesReg(champtrace.RegFlags) {
		t.Error("flag-reg should apply to FP instructions without destinations")
	}
	// ALU instructions WITH a destination are untouched.
	add := &cvp.Instruction{PC: 0x1008, Class: cvp.ClassALU, SrcRegs: []uint8{1}, DstRegs: []uint8{2}, DstValues: []uint64{3}}
	if rec4 := c.Convert(add)[0]; rec4.WritesReg(champtrace.RegFlags) {
		t.Error("flag-reg must not touch instructions that have destinations")
	}
}

func TestConditionalBranchConversion(t *testing.T) {
	// A flags-based conditional (B.EQ) has no CVP sources.
	beq := &cvp.Instruction{PC: 0x1000, Class: cvp.ClassCondBranch, Taken: true, Target: 0x2000}
	rec := New(OptionsNone()).Convert(beq)[0]
	if !rec.IsBranch || !rec.Taken {
		t.Error("branch flags lost")
	}
	if got := champtrace.Classify(rec, champtrace.RulesOriginal); got != champtrace.BranchConditional {
		t.Errorf("B.EQ classifies as %v, want conditional", got)
	}

	// cbz X5: has a CVP source register.
	cbz := &cvp.Instruction{PC: 0x1004, Class: cvp.ClassCondBranch, SrcRegs: []uint8{5}}
	// Original: the source is dropped and FLAGS is read instead.
	rec2 := New(OptionsNone()).Convert(cbz)[0]
	if rec2.ReadsReg(MapReg(5)) {
		t.Errorf("original converter should drop GPR sources, got %v", rec2.SrcRegs)
	}
	if !rec2.ReadsReg(champtrace.RegFlags) {
		t.Error("original converter should read FLAGS")
	}
	// branch-regs: the source is kept, FLAGS dropped.
	c := New(Options{BranchRegs: true})
	rec3 := c.Convert(cbz)[0]
	if !rec3.ReadsReg(MapReg(5)) || rec3.ReadsReg(champtrace.RegFlags) {
		t.Errorf("branch-regs: srcs = %v, want X5 and no FLAGS", rec3.SrcRegs)
	}
	if c.Stats().CondWithSrc != 1 {
		t.Errorf("CondWithSrc = %d, want 1", c.Stats().CondWithSrc)
	}
	// ...and under the patched rules it still classifies as conditional.
	if got := champtrace.Classify(rec3, champtrace.RulesPatched); got != champtrace.BranchConditional {
		t.Errorf("patched classification = %v, want conditional", got)
	}
	// Under the ORIGINAL rules it would be misread as an indirect jump —
	// this is why the paper patches ChampSim.
	if got := champtrace.Classify(rec3, champtrace.RulesOriginal); got != champtrace.BranchIndirect {
		t.Errorf("original classification = %v, want indirect (the documented hazard)", got)
	}
	// Flags-based conditionals keep FLAGS even under branch-regs.
	rec4 := c.Convert(beq)[0]
	if !rec4.ReadsReg(champtrace.RegFlags) {
		t.Error("branch-regs must keep FLAGS for conditionals without sources")
	}
}

func TestCallStackFix(t *testing.T) {
	// RET: unconditional indirect reading X30, writing nothing.
	ret := &cvp.Instruction{PC: 0x1000, Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x2000, SrcRegs: []uint8{cvp.RegLR}}
	// BLR X30: indirect call reading AND writing X30.
	blrLR := &cvp.Instruction{PC: 0x1004, Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x3000,
		SrcRegs: []uint8{cvp.RegLR}, DstRegs: []uint8{cvp.RegLR}, DstValues: []uint64{0x1008}}

	for _, rules := range []champtrace.RuleSet{champtrace.RulesOriginal, champtrace.RulesPatched} {
		// Original converter: both become returns (the bug).
		co := New(OptionsNone())
		if got := champtrace.Classify(co.Convert(ret)[0], rules); got != champtrace.BranchReturn {
			t.Errorf("rules %v: RET classifies as %v, want return", rules, got)
		}
		if got := champtrace.Classify(co.Convert(blrLR)[0], rules); got != champtrace.BranchReturn {
			t.Errorf("rules %v: original converter should misclassify BLR X30 as return, got %v", rules, got)
		}
		if co.Stats().ReadWriteLRBranches != 1 {
			t.Errorf("ReadWriteLRBranches = %d, want 1", co.Stats().ReadWriteLRBranches)
		}
		// call-stack improvement: BLR X30 becomes an indirect call.
		ci := New(Options{CallStack: true})
		if got := champtrace.Classify(ci.Convert(ret)[0], rules); got != champtrace.BranchReturn {
			t.Errorf("rules %v: improved RET classifies as %v, want return", rules, got)
		}
		if got := champtrace.Classify(ci.Convert(blrLR)[0], rules); got != champtrace.BranchIndirectCall {
			t.Errorf("rules %v: improved BLR X30 classifies as %v, want indirect-call", rules, got)
		}
		st := ci.Stats()
		if st.Returns != 1 || st.IndirectCalls != 1 {
			t.Errorf("stats = %+v, want 1 return and 1 indirect call", st)
		}
	}
}

func TestBranchKinds(t *testing.T) {
	cases := []struct {
		name string
		in   *cvp.Instruction
		want champtrace.BranchType
	}{
		{"b (direct jump)", &cvp.Instruction{Class: cvp.ClassUncondDirect, Taken: true, Target: 0x20}, champtrace.BranchDirectJump},
		{"bl (direct call)", &cvp.Instruction{Class: cvp.ClassUncondDirect, Taken: true, Target: 0x20,
			DstRegs: []uint8{cvp.RegLR}, DstValues: []uint64{0x8}}, champtrace.BranchDirectCall},
		{"br x5 (indirect jump)", &cvp.Instruction{Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x20,
			SrcRegs: []uint8{5}}, champtrace.BranchIndirect},
		{"blr x5 (indirect call)", &cvp.Instruction{Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x20,
			SrcRegs: []uint8{5}, DstRegs: []uint8{cvp.RegLR}, DstValues: []uint64{0x8}}, champtrace.BranchIndirectCall},
	}
	for _, opts := range []Options{OptionsNone(), OptionsAll()} {
		rules := champtrace.RulesOriginal
		if opts.BranchRegs {
			rules = champtrace.RulesPatched
		}
		for _, tc := range cases {
			c := New(opts)
			rec := c.Convert(tc.in)[0]
			if got := champtrace.Classify(rec, rules); got != tc.want {
				t.Errorf("opts %v, %s: classified %v, want %v", opts, tc.name, got, tc.want)
			}
		}
	}
}

func TestIndirectBranchSources(t *testing.T) {
	br := &cvp.Instruction{Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x20, SrcRegs: []uint8{5}}
	// Original: X56 marker, CVP source dropped.
	rec := New(OptionsNone()).Convert(br)[0]
	if !rec.ReadsReg(champtrace.RegOther) || rec.ReadsReg(MapReg(5)) {
		t.Errorf("original: srcs = %v, want X56 only", rec.SrcRegs)
	}
	// branch-regs: actual source, no X56.
	rec2 := New(Options{BranchRegs: true}).Convert(br)[0]
	if rec2.ReadsReg(champtrace.RegOther) || !rec2.ReadsReg(MapReg(5)) {
		t.Errorf("branch-regs: srcs = %v, want X5 and no X56", rec2.SrcRegs)
	}
	// branch-regs with no recorded source falls back to X56.
	br2 := &cvp.Instruction{Class: cvp.ClassUncondIndirect, Taken: true, Target: 0x20}
	rec3 := New(Options{BranchRegs: true}).Convert(br2)[0]
	if !rec3.ReadsReg(champtrace.RegOther) {
		t.Errorf("branch-regs fallback: srcs = %v, want X56", rec3.SrcRegs)
	}
}

func TestConvertAllAndStream(t *testing.T) {
	instrs := []*cvp.Instruction{
		{PC: 0x1000, Class: cvp.ClassALU, SrcRegs: []uint8{1}, DstRegs: []uint8{0}, DstValues: []uint64{0x8000}},
		ldrPreIndex(0x1004, 0x8000),
		{PC: 0x1008, Class: cvp.ClassCondBranch, Taken: true, Target: 0x1000},
	}
	recs, st, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	if st.In != 3 {
		t.Errorf("In = %d, want 3", st.In)
	}
	if st.Out != uint64(len(recs)) {
		t.Errorf("Out = %d but %d records returned", st.Out, len(recs))
	}
	if len(recs) != 4 { // base-update split adds one
		t.Errorf("got %d records, want 4", len(recs))
	}
}

func TestMaxSourcesTruncated(t *testing.T) {
	// Compare-and-swap pair style: six sources; only four survive.
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x8000, MemSize: 8,
		SrcRegs: []uint8{1, 2, 3, 4, 5, 7},
	}
	rec := New(Options{MemRegs: true}).Convert(in)[0]
	n := 0
	for _, s := range rec.SrcRegs {
		if s != champtrace.RegInvalid {
			n++
		}
	}
	if n != champtrace.NumSrcRegs {
		t.Errorf("kept %d sources, want %d", n, champtrace.NumSrcRegs)
	}
	if !rec.ReadsReg(MapReg(1)) || !rec.ReadsReg(MapReg(4)) || rec.ReadsReg(MapReg(7)) {
		t.Errorf("want the FIRST four sources, got %v", rec.SrcRegs)
	}
}

func TestRegMapping(t *testing.T) {
	seen := map[uint8]uint8{}
	for r := uint8(0); r < cvp.NumRegs; r++ {
		m := MapReg(r)
		switch m {
		case champtrace.RegInvalid, champtrace.RegStackPointer, champtrace.RegFlags,
			champtrace.RegInstructionPointer, champtrace.RegOther:
			t.Errorf("MapReg(%d) = %d collides with a reserved ChampSim id", r, m)
		}
		if prev, dup := seen[m]; dup {
			t.Errorf("MapReg(%d) = MapReg(%d) = %d: not injective", r, prev, m)
		}
		seen[m] = r
	}
}

func TestPostIndexInferredWithUnknownOldValue(t *testing.T) {
	// When the tracker has never seen the base register, a value within
	// the immediate window is accepted as post-index (best effort, per
	// the trace maintainer's heuristic).
	c := New(Options{BaseUpdate: true})
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x8000, MemSize: 8,
		SrcRegs:   []uint8{3},
		DstRegs:   []uint8{4, 3},
		DstValues: []uint64{1, 0x8008},
	}
	if out := c.Convert(in); len(out) != 2 {
		t.Fatalf("unknown-old post-index not split: %d records", len(out))
	}
	if c.Stats().PostIndex != 1 {
		t.Errorf("PostIndex = %d", c.Stats().PostIndex)
	}
}

func TestConvertStreamPropagatesWriteErrors(t *testing.T) {
	instrs := []*cvp.Instruction{{PC: 0x10, Class: cvp.ClassALU}}
	w := champtrace.NewWriter(failingWriter{})
	if _, err := core_ConvertStreamShim(instrs, w); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errBoom }

var errBoom = fmt.Errorf("boom")

func core_ConvertStreamShim(instrs []*cvp.Instruction, w *champtrace.Writer) (Stats, error) {
	st, err := ConvertStream(cvp.NewSliceSource(instrs), w, OptionsAll())
	if err == nil {
		// The bufio layer may hold the record; force the flush path.
		if ferr := w.Flush(); ferr != nil {
			return st, ferr
		}
	}
	return st, err
}

func TestStoreFootprintCrossLine(t *testing.T) {
	// An 8-byte store at offset 60 crosses lines: second DestMem address.
	c := New(Options{MemFootprint: true})
	in := &cvp.Instruction{
		PC: 0x1000, Class: cvp.ClassStore, EffAddr: 0x903c, MemSize: 8,
		SrcRegs: []uint8{1, 2},
	}
	rec := c.Convert(in)[0]
	if rec.DestMem[0] != 0x903c || rec.DestMem[1] != 0x9040 {
		t.Fatalf("store cross-line DestMem = %v", rec.DestMem)
	}
}

func TestZeroSizeMemDefensive(t *testing.T) {
	// A degenerate record with MemSize 0 must not crash footprint logic.
	c := New(Options{MemFootprint: true})
	in := &cvp.Instruction{PC: 0x1000, Class: cvp.ClassLoad, EffAddr: 0x9000, SrcRegs: []uint8{1}}
	rec := c.Convert(in)[0]
	if !rec.IsLoad() {
		t.Fatal("load lost its memory source")
	}
}
