// Package champtrace implements the ChampSim trace format: the strict
// 64-byte-per-instruction binary record, stream reader/writer, the x86
// register conventions the simulator keys on, and the register-based branch
// type deduction — in both the original ChampSim formulation and the patched
// formulation proposed in §3.2.2 of the paper.
package champtrace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Fixed per-record field counts of the ChampSim trace format.
const (
	// NumDestRegs is the number of destination register slots (2).
	NumDestRegs = 2
	// NumSrcRegs is the number of source register slots (4).
	NumSrcRegs = 4
	// NumDestMem is the number of memory destination slots (2).
	NumDestMem = 2
	// NumSrcMem is the number of memory source slots (4).
	NumSrcMem = 4
	// RecordSize is the size in bytes of one encoded instruction:
	// ip(8) + isBranch(1) + taken(1) + dst(2) + src(4) + dmem(2*8) + smem(4*8).
	RecordSize = 8 + 1 + 1 + NumDestRegs + NumSrcRegs + 8*NumDestMem + 8*NumSrcMem
)

// x86 register conventions ChampSim uses to deduce branch types. Register
// slot value 0 means "unused".
const (
	// RegInvalid marks an empty register slot.
	RegInvalid = 0
	// RegStackPointer is ChampSim's x86 stack pointer register id.
	RegStackPointer = 6
	// RegFlags is ChampSim's x86 flags register id.
	RegFlags = 25
	// RegInstructionPointer is ChampSim's x86 instruction pointer id.
	RegInstructionPointer = 26
	// RegOther is the artificial general-purpose register the original
	// cvp2champsim converter attaches to indirect branches to convey
	// "reads a register other than SP/FLAGS/IP" to ChampSim.
	RegOther = 56
)

// Instruction is one ChampSim trace record. The format is strict: every
// instruction occupies RecordSize bytes even when most slots are unused.
type Instruction struct {
	IP       uint64
	IsBranch bool
	Taken    bool
	DestRegs [NumDestRegs]uint8
	SrcRegs  [NumSrcRegs]uint8
	DestMem  [NumDestMem]uint64
	SrcMem   [NumSrcMem]uint64
}

// IsLoad reports whether the record has at least one memory source.
// ChampSim has no operation-type field: loads are deduced this way.
func (in *Instruction) IsLoad() bool {
	for _, a := range in.SrcMem {
		if a != 0 {
			return true
		}
	}
	return false
}

// IsStore reports whether the record has at least one memory destination.
func (in *Instruction) IsStore() bool {
	for _, a := range in.DestMem {
		if a != 0 {
			return true
		}
	}
	return false
}

// AddDestReg appends r to the first free destination slot, reporting whether
// a slot was available. Duplicate registers are kept, matching ChampSim.
func (in *Instruction) AddDestReg(r uint8) bool {
	for i := range in.DestRegs {
		if in.DestRegs[i] == RegInvalid {
			in.DestRegs[i] = r
			return true
		}
	}
	return false
}

// AddSrcReg appends r to the first free source slot, reporting whether a
// slot was available.
func (in *Instruction) AddSrcReg(r uint8) bool {
	for i := range in.SrcRegs {
		if in.SrcRegs[i] == RegInvalid {
			in.SrcRegs[i] = r
			return true
		}
	}
	return false
}

// AddSrcMem appends addr to the first free memory-source slot.
func (in *Instruction) AddSrcMem(addr uint64) bool {
	for i := range in.SrcMem {
		if in.SrcMem[i] == 0 {
			in.SrcMem[i] = addr
			return true
		}
	}
	return false
}

// AddDestMem appends addr to the first free memory-destination slot.
func (in *Instruction) AddDestMem(addr uint64) bool {
	for i := range in.DestMem {
		if in.DestMem[i] == 0 {
			in.DestMem[i] = addr
			return true
		}
	}
	return false
}

// ReadsReg reports whether r appears among the source registers.
func (in *Instruction) ReadsReg(r uint8) bool {
	for _, s := range in.SrcRegs {
		if s == r && r != RegInvalid {
			return true
		}
	}
	return false
}

// WritesReg reports whether r appears among the destination registers.
func (in *Instruction) WritesReg(r uint8) bool {
	for _, d := range in.DestRegs {
		if d == r && r != RegInvalid {
			return true
		}
	}
	return false
}

// Encode appends the 64-byte record to dst and returns the extended slice.
func (in *Instruction) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, in.IP)
	dst = append(dst, b2u(in.IsBranch), b2u(in.Taken))
	dst = append(dst, in.DestRegs[:]...)
	dst = append(dst, in.SrcRegs[:]...)
	for _, a := range in.DestMem {
		dst = binary.LittleEndian.AppendUint64(dst, a)
	}
	for _, a := range in.SrcMem {
		dst = binary.LittleEndian.AppendUint64(dst, a)
	}
	return dst
}

// Decode fills the instruction from a 64-byte record.
func (in *Instruction) Decode(b []byte) error {
	if len(b) < RecordSize {
		return fmt.Errorf("champtrace: record needs %d bytes, have %d", RecordSize, len(b))
	}
	in.IP = binary.LittleEndian.Uint64(b[0:])
	in.IsBranch = b[8] != 0
	in.Taken = b[9] != 0
	copy(in.DestRegs[:], b[10:10+NumDestRegs])
	copy(in.SrcRegs[:], b[12:12+NumSrcRegs])
	off := 16
	for i := range in.DestMem {
		in.DestMem[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	for i := range in.SrcMem {
		in.SrcMem[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	return nil
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Writer encodes instructions to a ChampSim trace stream.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, RecordSize)}
}

// Write encodes one instruction.
func (tw *Writer) Write(in *Instruction) error {
	tw.buf = in.Encode(tw.buf[:0])
	if _, err := tw.w.Write(tw.buf); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of instructions written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes instructions from a ChampSim trace stream. It implements
// Source.
type Reader struct {
	r   *bufio.Reader
	buf [RecordSize]byte
	n   uint64
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next instruction, io.EOF at a clean end of stream, or
// io.ErrUnexpectedEOF when the stream ends mid-record.
func (tr *Reader) Next() (*Instruction, error) {
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("champtrace: truncated record after %d instructions: %w", tr.n, err)
		}
		return nil, err
	}
	in := new(Instruction)
	if err := in.Decode(tr.buf[:]); err != nil {
		return nil, err
	}
	tr.n++
	return in, nil
}

// Count returns the number of instructions decoded so far.
func (tr *Reader) Count() uint64 { return tr.n }

// Source is a stream of ChampSim instructions ending with io.EOF.
type Source interface {
	Next() (*Instruction, error)
}

// SliceSource adapts an in-memory slice to Source.
type SliceSource struct {
	instrs []*Instruction
	pos    int
}

// NewSliceSource returns a Source over instrs.
func NewSliceSource(instrs []*Instruction) *SliceSource {
	return &SliceSource{instrs: instrs}
}

// Next implements Source.
func (s *SliceSource) Next() (*Instruction, error) {
	if s.pos >= len(s.instrs) {
		return nil, io.EOF
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, nil
}

// Reset rewinds to the first instruction.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the number of instructions.
func (s *SliceSource) Len() int { return len(s.instrs) }

// OpenReader wraps r with gzip decompression when name ends in ".gz".
func OpenReader(name string, r io.Reader) (*Reader, io.Closer, error) {
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, nil, fmt.Errorf("champtrace: open %s: %w", name, err)
		}
		return NewReader(zr), zr, nil
	}
	return NewReader(r), io.NopCloser(r), nil
}

// ReadAll decodes the full stream into memory.
func ReadAll(src Source) ([]*Instruction, error) {
	var out []*Instruction
	for {
		in, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}
