package expstore

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tracerebase/internal/frame"
	"tracerebase/internal/resultcache"
)

// randCell fabricates a cell with identity fields drawn from small
// vocabularies (so dictionary pruning has something to bite on) and
// counters drawn wide (so delta encoding sees real ranges).
func randCell(rng *rand.Rand) Cell {
	cats := []string{"compute_int", "compute_fp", "crypto", "srv"}
	variants := []string{"No_imp", "All_imps", "BP_only", "BTB_only", "ICache_only"}
	configs := []string{"develop", "ipc1"}
	prefs := []string{"none", "next2"}
	var c Cell
	c.Category = cats[rng.Intn(len(cats))]
	c.Trace = fmt.Sprintf("%s_%d", c.Category, rng.Intn(8))
	c.Variant = variants[rng.Intn(len(variants))]
	c.Config = configs[rng.Intn(len(configs))]
	c.Prefetcher = prefs[rng.Intn(len(prefs))]
	c.ROB = uint64(64 << rng.Intn(4))
	c.Cores = 1
	c.SamplePeriod = uint64(rng.Intn(2)) * 1000
	c.Instructions = uint64(1+rng.Intn(5)) * 100000
	c.Warmup = uint64(rng.Intn(3)) * 10000
	c.IPC = rng.Float64() * 4
	c.Sim.Instructions = c.Instructions
	c.Sim.Cycles = uint64(float64(c.Instructions) / (c.IPC + 0.01))
	c.Sim.Branches = rng.Uint64() % c.Instructions
	c.Sim.Mispredicts = c.Sim.Branches / uint64(1+rng.Intn(50))
	c.Sim.L1I.Accesses = rng.Uint64() % (1 << 40)
	c.Sim.L1I.Misses = c.Sim.L1I.Accesses / uint64(1+rng.Intn(100))
	c.Sim.SampleIPCMean = rng.Float64() * 4
	c.Conv.In = rng.Uint64() % (1 << 50)
	c.Conv.Out = c.Conv.In + uint64(rng.Intn(1000))
	c.Key = resultcache.NewHasher("expstore-test").U64(rng.Uint64()).U64(rng.Uint64()).Sum()
	return c
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 256} {
		cells := make([]Cell, n)
		for i := range cells {
			cells[i] = randCell(rng)
		}
		img, err := encodeBlock(cells, blockMeta{runID: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(img)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, cells) {
			t.Fatalf("n=%d: cells did not round-trip", n)
		}
	}
}

// fillNumeric walks a struct with reflection, setting every uint64 field
// to a fresh distinct value and every float64 to a fresh non-integral one.
func fillNumeric(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNumeric(v.Field(i), next)
		}
	case reflect.Uint64:
		*next++
		v.SetUint(*next)
	case reflect.Float64:
		*next++
		v.SetFloat(float64(*next) + 0.25)
	}
}

// TestSchemaCoversStats pins the column schema against the counter
// structs: every numeric field of sim.Stats and core.Stats is set to a
// distinct value and must survive a block round-trip. Adding a field to
// either struct without adding a column here fails this test instead of
// silently dropping the data.
func TestSchemaCoversStats(t *testing.T) {
	var c Cell
	c.Trace, c.Category, c.Variant, c.Config, c.Prefetcher = "t", "c", "v", "m", "p"
	var next uint64
	fillNumeric(reflect.ValueOf(&c.Sim).Elem(), &next)
	fillNumeric(reflect.ValueOf(&c.Conv).Elem(), &next)
	c.ROB, c.Cores, c.SamplePeriod, c.Instructions, c.Warmup = 1, 2, 3, 4, 5
	c.IPC = 6.5
	c.Key = resultcache.NewHasher("cover").Sum()
	img, err := encodeBlock([]Cell{c}, blockMeta{runID: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlock(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], c) {
		t.Fatalf("schema does not cover all Stats fields:\n got %+v\nwant %+v", got[0], c)
	}
}

func newTestStore(t *testing.T, blockCells int) *Store {
	t.Helper()
	s, err := Open(Config{Dir: t.TempDir(), BlockCells: blockCells, CompactTrigger: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fillStore(t *testing.T, s *Store, rng *rand.Rand, n int) []Cell {
	t.Helper()
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = randCell(rng)
		if err := s.Append(cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return cells
}

func rowsEqual(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

// TestQueryFullScanEquivalence is the randomized oracle: random cells in
// small blocks, random queries, and the pruned+projected engine must
// return exactly the rows the brute-force full scan does.
func TestQueryFullScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newTestStore(t, 16)
	fillStore(t, s, rng, 400)

	metrics := []string{"ipc", "cycles", "mispredicts", "sample_ipc_mean"}
	groups := []string{"", "category", "variant", "rob", "category,variant", "trace,rob"}
	stats := []string{"mean", "count,geomean", "min,max,p50,p99", "sum,p90,p95"}
	filterCols := []string{"category", "variant", "trace", "rob", "config"}
	vocab := map[string][]string{
		"category": {"compute_int", "compute_fp", "crypto", "srv", "absent"},
		"variant":  {"No_imp", "All_imps", "BP_only", "BTB_only", "ICache_only"},
		"trace":    {"srv_0", "srv_1", "crypto_2", "compute_int_3", "nosuch"},
		"rob":      {"64", "128", "256", "512", "7"},
		"config":   {"develop", "ipc1"},
	}
	anyPruned := false
	check := func(seed int64) bool {
		qr := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		fmt.Fprintf(&sb, "metric=%s stat=%s", metrics[qr.Intn(len(metrics))], stats[qr.Intn(len(stats))])
		if g := groups[qr.Intn(len(groups))]; g != "" {
			fmt.Fprintf(&sb, " group-by=%s", g)
		}
		for _, col := range filterCols {
			if qr.Intn(2) == 0 {
				continue
			}
			vs := vocab[col]
			n := 1 + qr.Intn(2)
			picks := make([]string, n)
			for i := range picks {
				picks[i] = vs[qr.Intn(len(vs))]
			}
			fmt.Fprintf(&sb, " %s=%s", col, strings.Join(picks, ","))
		}
		q, err := ParseQuery(sb.String())
		if err != nil {
			t.Fatalf("%s: %v", sb.String(), err)
		}
		fast, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := s.FullScan(q)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Stats.BlocksPruned > 0 {
			anyPruned = true
		}
		if !rowsEqual(fast, slow) {
			t.Logf("query %q diverged:\nfast %+v\nslow %+v", sb.String(), fast.Rows, slow.Rows)
			return false
		}
		return fast.Stats.BytesRead <= slow.Stats.BytesRead
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if !anyPruned {
		t.Fatal("no query pruned any block; footer statistics are inert")
	}
}

func TestAppendDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]Cell, 20)
	for i := range cells {
		cells[i] = randCell(rng)
		if err := s.Append(cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cells { // same keys again, same process
		if err := s.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.DupSkipped != 20 {
		t.Fatalf("DupSkipped = %d, want 20", st.DupSkipped)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process re-appending the same cells dedups against disk.
	s2, err := Open(Config{Dir: dir, BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, c := range cells {
		if err := s2.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.Stats(); st.DupSkipped != 20 {
		t.Fatalf("after reopen DupSkipped = %d, want 20", st.DupSkipped)
	}
	all, err := s2.ScanCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("store holds %d cells, want 20", len(all))
	}
}

// cellMultiset renders cells order-independently for multiset comparison.
func cellMultiset(cells []Cell) []string {
	out := make([]string, len(cells))
	for i := range cells {
		out[i] = fmt.Sprintf("%+v", cells[i])
	}
	sort.Strings(out)
	return out
}

func TestCompactionPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := newTestStore(t, 8)
	// Flush every 5 cells: 20 undersized tail-style blocks, the shape
	// incremental appends leave behind.
	for i := 0; i < 20; i++ {
		fillStore(t, s, rng, 5)
	}
	before, err := s.ScanCells()
	if err != nil {
		t.Fatal(err)
	}
	blocksBefore := s.Blocks()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := s.ScanCells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cellMultiset(before), cellMultiset(after)) {
		t.Fatal("compaction changed the cell multiset")
	}
	if s.Blocks() >= blocksBefore {
		t.Fatalf("compaction did not reduce block count: %d -> %d", blocksBefore, s.Blocks())
	}
	if st := s.Stats(); st.Compactions == 0 || st.BlocksCompacted == 0 {
		t.Fatalf("compaction counters not advanced: %+v", st)
	}
}

func TestCorruptBlockDroppedAndReconverts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, BlockCells: 10})
	if err != nil {
		t.Fatal(err)
	}
	cells := fillStore(t, s, rng, 30)
	s.Close()

	// Flip the last column-data byte in one block (the byte before the
	// footer is always inside the final column's checked region); the
	// column checksum catches it when the column is materialized.
	names, _ := filepath.Glob(filepath.Join(dir, "*.expb"))
	if len(names) < 2 {
		t.Fatalf("expected multiple partitioned blocks, have %v", names)
	}
	victim := names[len(names)/2]
	img, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	lost := int(binary.LittleEndian.Uint64(img[40:48]))
	footerOff := binary.LittleEndian.Uint64(img[48:56])
	img[footerOff-1] ^= 0xFF
	if err := os.WriteFile(victim, img, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned []string
	s2, err := Open(Config{Dir: dir, BlockCells: 10, Warn: func(f string, a ...any) {
		warned = append(warned, fmt.Sprintf(f, a...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// A full scan materializes every column, so the damaged one is found,
	// the block dropped, and the scan completes on what remains.
	q, _ := ParseQuery("stat=count")
	res, err := s2.FullScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsMatched != 30-lost {
		t.Fatalf("after corruption scan sees %d cells, want %d", res.Stats.CellsMatched, 30-lost)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], victim) {
		t.Fatalf("warning does not point at the corrupt file: %q", warned)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("corrupt block %s still on disk", victim)
	}

	// The lost cells reconvert: re-appending restores the full matrix.
	for _, c := range cells {
		if err := s2.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err = s2.FullScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsMatched != 30 {
		t.Fatalf("after re-append query sees %d cells, want 30", res.Stats.CellsMatched)
	}
}

func TestCorruptHeaderRemovedAtOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dir := t.TempDir()
	s, _ := Open(Config{Dir: dir, BlockCells: 10})
	fillStore(t, s, rng, 10)
	s.Close()
	names, _ := filepath.Glob(filepath.Join(dir, "*.expb"))
	img, _ := os.ReadFile(names[0])
	img[5] ^= 0xFF // version byte inside the CRC'd header prefix
	os.WriteFile(names[0], img, 0o644)
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(names[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt-header block still on disk")
	}
}

func TestForeignBlockSkippedNotDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	s, _ := Open(Config{Dir: dir, BlockCells: 10})
	fillStore(t, s, rng, 20)
	s.Close()
	names, _ := filepath.Glob(filepath.Join(dir, "*.expb"))
	img, _ := os.ReadFile(names[0])
	skipped := int(binary.LittleEndian.Uint64(img[40:48]))
	// Rewrite the header as a future format version with a valid CRC.
	img[4] = byte(FormatVersion + 1)
	crc := frame.Checksum(img[:blockHeaderCRCOff])
	img[64], img[65], img[66], img[67] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	os.WriteFile(names[0], img, 0o644)

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Foreign != 1 || st.Corrupt != 0 {
		t.Fatalf("Foreign = %d Corrupt = %d, want 1, 0", st.Foreign, st.Corrupt)
	}
	q, _ := ParseQuery("stat=count")
	res, err := s2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsMatched != 20-skipped {
		t.Fatalf("query sees %d cells, want %d (foreign block skipped)", res.Stats.CellsMatched, 20-skipped)
	}
	if _, err := os.Stat(names[0]); err != nil {
		t.Fatal("foreign block was deleted; it must be left in place")
	}
}

func TestCellsReadBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := newTestStore(t, 16)
	cells := fillStore(t, s, rng, 64)
	keys := make([]Key, 0, 10)
	want := make(map[Key]Cell, 10)
	for _, i := range []int{0, 7, 13, 22, 31, 40, 49, 55, 60, 63} {
		keys = append(keys, cells[i].Key)
		want[cells[i].Key] = cells[i]
	}
	got, err := s.Cells(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("read-back mismatch: got %d cells, want %d", len(got), len(want))
	}
}

// TestPartitionedBlocksArePure pins the writer's partition discipline:
// every flushed block holds exactly one (category, config) pair, which is
// what makes category/config/trace pruning effective.
func TestPartitionedBlocksArePure(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := newTestStore(t, 8)
	fillStore(t, s, rng, 120)
	for _, ref := range s.snapshot() {
		r, err := s.acquire(ref)
		if err != nil {
			t.Fatal(err)
		}
		cat := r.metas[colIndex["category"]].dict
		cfg := r.metas[colIndex["config"]].dict
		if len(cat) != 1 || len(cfg) != 1 {
			t.Fatalf("block %s mixes partitions: categories %v configs %v", ref.path, cat, cfg)
		}
	}
}

// TestQueryKeySkipAndDedup covers the dup-free scan optimization from both
// sides: a linear store proves its blocks disjoint and skips the key
// column entirely, while crash-leftover and concurrent-writer lineages
// force the key column back on so keep-first dedup stays correct.
func TestQueryKeySkipAndDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newTestStore(t, 8)
	fillStore(t, s, rng, 60)
	q, _ := ParseQuery("stat=count")
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// One writer run: lineage proves the blocks disjoint, so the only
	// materialized column is the ipc metric.
	if res.Stats.ColumnsRead != 1 || res.Stats.DupDropped != 0 {
		t.Fatalf("linear store read %d columns (%d dups), want the metric column only",
			res.Stats.ColumnsRead, res.Stats.DupDropped)
	}
	if len(res.Rows) != 1 || res.Rows[0].Count != 60 {
		t.Fatalf("rows %+v, want one row counting 60 cells", res.Rows)
	}

	// Crash-leftover shape: a compaction output (source range covering
	// sequence 0) coexists with its input. The overlap flags the pair, the
	// key column comes back, and the duplicates are dropped.
	dir := t.TempDir()
	cells := []Cell{randCell(rng), randCell(rng)}
	sortCells(cells)
	fresh, err := encodeBlock(cells, blockMeta{runID: 7, baseSeq: 0})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := encodeBlock(cells, blockMeta{runID: 7, baseSeq: 0, hasSrc: true, srcMin: 0, srcMax: 0})
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, blockName(0, 0)), fresh, 0o644)
	os.WriteFile(filepath.Join(dir, blockName(0, 1)), merged, 0o644)
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res2, err := s2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.DupDropped != 2 {
		t.Fatalf("DupDropped = %d, want 2 (leftover cells deduplicated)", res2.Stats.DupDropped)
	}
	full, err := s2.FullScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(res2, full) {
		t.Fatalf("pruned rows %+v diverge from full scan %+v", res2.Rows, full.Rows)
	}

	// Concurrent-writer shape: two runs that started from the same view
	// cannot prove each other's blocks disjoint, so the key column is
	// materialized even though no duplicate exists.
	dir2 := t.TempDir()
	a, _ := encodeBlock([]Cell{randCell(rng)}, blockMeta{runID: 21, baseSeq: 0})
	b, _ := encodeBlock([]Cell{randCell(rng)}, blockMeta{runID: 22, baseSeq: 0})
	os.WriteFile(filepath.Join(dir2, blockName(0, 0)), a, 0o644)
	os.WriteFile(filepath.Join(dir2, blockName(1, 0)), b, 0o644)
	s3, err := Open(Config{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	res3, err := s3.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.ColumnsRead != 2 || res3.Stats.DupDropped != 0 {
		t.Fatalf("concurrent-writer store read %d columns (%d dups), want key + metric",
			res3.Stats.ColumnsRead, res3.Stats.DupDropped)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"metric=trace", // non-numeric metric
		"metric=nope",  // unknown column
		"group-by=ipc", // cannot group by float
		"stat=median",  // unknown stat
		"bogus=1",      // unknown filter column
		"rob",          // not key=value
		"rob=",         // empty value
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
	q, err := ParseQuery("category=srv variant=All_imps,No_imp metric=ipc group-by=rob stat=p50,p99")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 || q.Metric != "ipc" || len(q.GroupBy) != 1 || len(q.Stats) != 2 {
		t.Fatalf("parse: %+v", q)
	}
}

func TestAggregate(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 100}
	cases := map[string]float64{
		"count": 5, "sum": 110, "mean": 22, "min": 1, "max": 100,
		"p50": 3, "p90": 100, "p99": 100,
	}
	for st, want := range cases {
		if got := aggregate(st, vals); got != want {
			t.Errorf("aggregate(%s) = %v, want %v", st, got, want)
		}
	}
}
