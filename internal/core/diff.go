package core

import (
	"fmt"

	"tracerebase/internal/champtrace"
)

// DiffStats summarizes how two conversions of the SAME CVP-1 trace differ —
// the per-instruction view behind the paper's aggregate results. Comparing
// a No_imp conversion against an improved one shows exactly which records
// each improvement touches.
type DiffStats struct {
	// Instructions is the number of aligned instruction slots compared
	// (original-converter records).
	Instructions uint64
	// SplitMicroOps counts instructions the second trace splits into an
	// ALU + memory micro-op pair (base-update).
	SplitMicroOps uint64
	// BranchTypeChanged counts branches whose deduced type differs
	// (call-stack and branch-regs effects). Classification uses the rule
	// set each side requires.
	BranchTypeChanged uint64
	// SrcRegsChanged and DstRegsChanged count records whose register
	// sets differ (mem-regs, branch-regs, flag-reg effects).
	SrcRegsChanged, DstRegsChanged uint64
	// MemAddrsChanged counts records whose memory slots differ
	// (mem-footprint's second cacheline, DC ZVA realignment).
	MemAddrsChanged uint64
	// Identical counts records equal in every field.
	Identical uint64
}

// Diff aligns two conversions of the same CVP-1 trace and categorizes the
// differences. a must be the original-converter output (one record per
// instruction); b may contain base-update splits (micro-op pairs at PC and
// PC+2 — instruction PCs are assumed 4-byte aligned, as Aarch64's are).
// aRules/bRules are the branch-deduction rule sets each trace is meant to
// run under.
func Diff(a, b []*champtrace.Instruction, aRules, bRules champtrace.RuleSet) (DiffStats, error) {
	var st DiffStats
	j := 0
	for i := 0; i < len(a); i++ {
		if j >= len(b) {
			return st, fmt.Errorf("core: second trace ends early at record %d", j)
		}
		orig := a[i]
		st.Instructions++

		// Collect b's records for this instruction: one, or a split
		// pair whose members sit at PC and PC+2.
		recs := []*champtrace.Instruction{b[j]}
		j++
		if j < len(b) && b[j].IP == orig.IP+2 {
			recs = append(recs, b[j])
			j++
			st.SplitMicroOps++
		}
		if recs[0].IP != orig.IP && recs[0].IP != orig.IP+2 {
			return st, fmt.Errorf("core: misaligned at %#x vs %#x (record %d)", orig.IP, recs[0].IP, i)
		}

		// The memory-bearing (or only) record carries the comparable
		// semantics.
		main := recs[0]
		if len(recs) == 2 && (recs[1].IsLoad() || recs[1].IsStore()) {
			main = recs[1]
		}

		identical := len(recs) == 1 && *main == *orig
		if identical {
			st.Identical++
			continue
		}
		if orig.IsBranch {
			at := champtrace.Classify(orig, aRules)
			bt := champtrace.Classify(main, bRules)
			if at != bt {
				st.BranchTypeChanged++
			}
		}
		if main.SrcRegs != orig.SrcRegs {
			st.SrcRegsChanged++
		}
		if main.DestRegs != orig.DestRegs {
			st.DstRegsChanged++
		}
		if main.SrcMem != orig.SrcMem || main.DestMem != orig.DestMem {
			st.MemAddrsChanged++
		}
	}
	if j != len(b) {
		return st, fmt.Errorf("core: second trace has %d trailing records", len(b)-j)
	}
	return st, nil
}
