package iprefetch

// TAP is the Temporal Ancestry Prefetcher (Gober et al.). It keeps the
// global stream of instruction misses in a history buffer; on a miss it
// finds the PREVIOUS occurrence of the same line (its "ancestor") and
// replays the misses that followed it last time — a classic temporal
// streaming scheme applied to instruction fetch.
type TAP struct {
	Base
	// ghb is the ring of recent miss lines.
	ghb []uint64
	pos int
	// index maps a line to its most recent position in the buffer.
	index map[uint64]int
	// replay is how many successors are prefetched per miss.
	replay int
}

// NewTAP returns a TAP prefetcher.
func NewTAP() *TAP {
	return &TAP{
		ghb:    make([]uint64, 4096),
		index:  make(map[uint64]int, 4096),
		replay: 3,
	}
}

// Name implements Prefetcher.
func (p *TAP) Name() string { return "tap" }

// OnAccess implements Prefetcher.
func (p *TAP) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	if hit {
		return buf
	}
	if prev, ok := p.index[lineAddr]; ok {
		// Replay the successors of the ancestor occurrence, stopping
		// at the write position (entries beyond it are stale).
		for i := 1; i <= p.replay; i++ {
			idx := (prev + i) % len(p.ghb)
			if idx == p.pos {
				break
			}
			if l := p.ghb[idx]; l != 0 && l != lineAddr {
				buf = append(buf, l)
			}
		}
	} else {
		// Cold line: fall back to sequential.
		buf = append(buf, lineAddr+LineSize)
	}

	// Record this miss.
	if old := p.ghb[p.pos]; old != 0 {
		// The slot is being overwritten; drop a stale index entry
		// that still points here.
		if pos, ok := p.index[old]; ok && pos == p.pos {
			delete(p.index, old)
		}
	}
	p.ghb[p.pos] = lineAddr
	p.index[lineAddr] = p.pos
	p.pos = (p.pos + 1) % len(p.ghb)
	return buf
}
