package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

type payload struct {
	N    int
	Blob []byte
}

func testCache(t *testing.T, dir string, maxBytes int64) *Cache[payload] {
	t.Helper()
	c, err := Open[payload](Config{Dir: dir, MaxBytes: maxBytes}, GobCodec[payload]{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func keyOf(i int) Key {
	return NewHasher("test").U64(uint64(i)).Sum()
}

func TestGetOrComputeRoundTrip(t *testing.T) {
	c := testCache(t, t.TempDir(), 0)
	want := payload{N: 7, Blob: []byte("hello")}
	got, err := c.GetOrCompute(keyOf(1), func() (payload, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || string(got.Blob) != string(want.Blob) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// Second lookup must be a memory hit, not a recompute.
	got2, err := c.GetOrCompute(keyOf(1), func() (payload, error) {
		t.Fatal("recomputed a cached key")
		return payload{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got2.N != want.N {
		t.Fatalf("memory hit returned %+v", got2)
	}
	s := c.Stats()
	if s.Computes != 1 || s.MemHits != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestSingleFlight: N concurrent goroutines asking for the same key must
// share exactly one computation.
func TestSingleFlight(t *testing.T) {
	c := testCache(t, t.TempDir(), 0)
	const n = 32
	var computes atomic.Int32
	start := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]payload, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = c.GetOrCompute(keyOf(42), func() (payload, error) {
				computes.Add(1)
				<-release // hold the flight open so every goroutine joins it
				return payload{N: 42}, nil
			})
		}(i)
	}
	close(start)
	// Let the leader enter compute and the rest pile up behind the flight;
	// SharedWaits is checked loosely because arrival order is scheduled.
	for c.Stats().Computes == 0 {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for one key, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i].N != 42 {
			t.Fatalf("goroutine %d got %+v", i, results[i])
		}
	}
}

// TestComputeErrorNotCached: a failed computation reaches the caller and is
// retried on the next lookup rather than served from cache.
func TestComputeErrorNotCached(t *testing.T) {
	c := testCache(t, t.TempDir(), 0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(keyOf(5), func() (payload, error) { return payload{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := c.GetOrCompute(keyOf(5), func() (payload, error) { return payload{N: 5}, nil })
	if err != nil || got.N != 5 {
		t.Fatalf("retry after error: %+v, %v", got, err)
	}
	if s := c.Stats(); s.Errors != 1 || s.Computes != 2 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCrossReopen: entries written by one Cache instance are served by a
// fresh instance over the same directory — the cross-process path.
func TestCrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1 := testCache(t, dir, 0)
	if _, err := c1.GetOrCompute(keyOf(9), func() (payload, error) { return payload{N: 9}, nil }); err != nil {
		t.Fatal(err)
	}
	c2 := testCache(t, dir, 0)
	got, err := c2.GetOrCompute(keyOf(9), func() (payload, error) {
		t.Fatal("recomputed an entry that is on disk")
		return payload{}, nil
	})
	if err != nil || got.N != 9 {
		t.Fatalf("reopen: %+v, %v", got, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Computes != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCorruptEntryRecomputed: a corrupted on-disk record must be detected,
// discarded, and recomputed — never decoded into a bogus result.
func TestCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	c1 := testCache(t, dir, 0)
	want := payload{N: 3, Blob: []byte("precious bits")}
	if _, err := c1.GetOrCompute(keyOf(3), func() (payload, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	path := c1.EntryPath(keyOf(3))
	// Corrupt one payload byte on disk.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-8] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := testCache(t, dir, 0)
	recomputed := false
	got, err := c2.GetOrCompute(keyOf(3), func() (payload, error) {
		recomputed = true
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("corrupt entry served instead of recomputed")
	}
	if got.N != want.N || string(got.Blob) != string(want.Blob) {
		t.Fatalf("got %+v", got)
	}
	if s := c2.Stats(); s.Corrupt != 1 || s.Computes != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The rewritten entry must be valid again for the next instance.
	c3 := testCache(t, dir, 0)
	if _, err := c3.GetOrCompute(keyOf(3), func() (payload, error) {
		t.Fatal("entry not repaired after recompute")
		return payload{}, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedAndForeignFiles: truncation, wrong magic, and a record
// stored under the wrong name are all treated as corruption.
func TestTruncatedAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	c1 := testCache(t, dir, 0)
	if _, err := c1.GetOrCompute(keyOf(1), func() (payload, error) { return payload{N: 1}, nil }); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(c1.EntryPath(keyOf(1)))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated": good[:len(good)/2],
		"badmagic":  append([]byte("XXXX"), good[4:]...),
		"empty":     {},
	}
	for name, data := range cases {
		if err := os.WriteFile(c1.EntryPath(keyOf(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c := testCache(t, dir, 0)
		recomputed := false
		if _, err := c.GetOrCompute(keyOf(1), func() (payload, error) {
			recomputed = true
			return payload{N: 1}, nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !recomputed {
			t.Fatalf("%s: corrupt entry served", name)
		}
	}
	// A valid record renamed onto another key's path must be rejected by
	// the embedded-key check.
	other := c1.EntryPath(keyOf(2))
	if err := os.MkdirAll(filepath.Dir(other), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, good, 0o644); err != nil {
		t.Fatal(err)
	}
	c := testCache(t, dir, 0)
	recomputed := false
	if _, err := c.GetOrCompute(keyOf(2), func() (payload, error) {
		recomputed = true
		return payload{N: 2}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("record with mismatched embedded key was served")
	}
}

// TestLRUEviction: with a tight size bound, the least-recently-used
// entries are evicted and the footprint stays bounded.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Size one record to learn the per-entry footprint. The probe value
	// must have the same shape as the real entries (nonzero N — gob omits
	// zero fields, which would undersize the bound).
	probe := testCache(t, t.TempDir(), 0)
	if _, err := probe.GetOrCompute(keyOf(7), mk(7)); err != nil {
		t.Fatal(err)
	}
	per := probe.DiskBytes()
	if per <= 0 {
		t.Fatalf("probe size %d", per)
	}

	c := testCache(t, dir, 3*per)
	for i := 1; i <= 5; i++ {
		if _, err := c.GetOrCompute(keyOf(i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.DiskBytes(); got > 3*per {
		t.Fatalf("disk footprint %d exceeds bound %d", got, 3*per)
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2; stats %+v", s.Evictions, s)
	}
	// A fresh instance sees only the surviving three: 1 and 2 (oldest)
	// evicted, 3..5 resident.
	c2 := testCache(t, dir, 3*per)
	for i := 1; i <= 2; i++ {
		if _, ok := c2.Get(keyOf(i)); ok {
			t.Fatalf("entry %d should have been evicted", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if _, ok := c2.Get(keyOf(i)); !ok {
			t.Fatalf("entry %d should have survived", i)
		}
	}
}

// TestLRUTouchOnHit: a disk hit refreshes an entry's age, changing the
// eviction victim.
func TestLRUTouchOnHit(t *testing.T) {
	dir := t.TempDir()
	probe := testCache(t, t.TempDir(), 0)
	if _, err := probe.GetOrCompute(keyOf(7), mk(7)); err != nil {
		t.Fatal(err)
	}
	per := probe.DiskBytes()

	c := testCache(t, dir, 2*per)
	for i := 1; i <= 2; i++ {
		if _, err := c.GetOrCompute(keyOf(i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 (disk hit via a fresh instance so it is not a memory hit),
	// then insert 3: the victim must now be 2.
	c2 := testCache(t, dir, 2*per)
	if _, ok := c2.Get(keyOf(1)); !ok {
		t.Fatal("entry 1 missing")
	}
	if _, err := c2.GetOrCompute(keyOf(3), mk(3)); err != nil {
		t.Fatal(err)
	}
	c3 := testCache(t, dir, 2*per)
	if _, ok := c3.Get(keyOf(2)); ok {
		t.Fatal("entry 2 should have been evicted (entry 1 was touched)")
	}
	if _, ok := c3.Get(keyOf(1)); !ok {
		t.Fatal("touched entry 1 was evicted")
	}
}

// TestAtomicWriteCrash: a partial temp file — what a crash mid-write
// leaves behind — is never visible as an entry and is cleaned up by the
// next Open.
func TestAtomicWriteCrash(t *testing.T) {
	dir := t.TempDir()
	c1 := testCache(t, dir, 0)
	if _, err := c1.GetOrCompute(keyOf(1), mk(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: a half-written temp file next to a real entry.
	shard := filepath.Dir(c1.EntryPath(keyOf(1)))
	tmpPath := filepath.Join(shard, "tmp-1234crash")
	if err := os.WriteFile(tmpPath, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := testCache(t, dir, 0)
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not cleaned up at Open: %v", err)
	}
	// The real entry still loads; the temp file never surfaced as one.
	if _, ok := c2.Get(keyOf(1)); !ok {
		t.Fatal("valid entry lost")
	}
	if s := c2.Stats(); s.Corrupt != 0 {
		t.Fatalf("temp file misread as a corrupt entry: %+v", s)
	}
	// And a successful store leaves no temp files behind.
	if _, err := c2.GetOrCompute(keyOf(2), mk(2)); err != nil {
		t.Fatal(err)
	}
	var leftovers []string
	filepath.WalkDir(c2.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), "tmp-") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) != 0 {
		t.Fatalf("temp files left after store: %v", leftovers)
	}
}

// TestConcurrentDistinctKeys: hammer the cache with overlapping keys under
// race detection.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := testCache(t, t.TempDir(), 0)
	const goroutines, keys = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				got, err := c.GetOrCompute(keyOf(i), mk(i))
				if err != nil {
					t.Error(err)
					return
				}
				if got.N != i {
					t.Errorf("key %d resolved to %+v", i, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := c.Stats(); s.Computes != keys {
		t.Fatalf("computes = %d, want %d (stats %+v)", s.Computes, keys, s)
	}
}

// mk returns a compute function producing a deterministic payload for i.
func mk(i int) func() (payload, error) {
	return func() (payload, error) {
		return payload{N: i, Blob: []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", 64)))}, nil
	}
}

// TestHitSplitInvariant pins the diagnosable-warmth contract the rebase
// stderr summary and -bench-json rely on: Hits always equals
// MemHits + DiskHits, a same-process re-read is a memory hit, and a fresh
// instance over the same store (a second process) serves the same key from
// disk — after which the now-promoted entry reads from memory again.
func TestHitSplitInvariant(t *testing.T) {
	dir := t.TempDir()
	check := func(c *Cache[payload], wantMem, wantDisk uint64) {
		t.Helper()
		s := c.Stats()
		if s.Hits != s.MemHits+s.DiskHits {
			t.Fatalf("hit split broken: %d hits != %d mem + %d disk", s.Hits, s.MemHits, s.DiskHits)
		}
		if s.MemHits != wantMem || s.DiskHits != wantDisk {
			t.Fatalf("stats %+v, want %d mem hits and %d disk hits", s, wantMem, wantDisk)
		}
	}
	get := func(c *Cache[payload]) {
		t.Helper()
		if _, err := c.GetOrCompute(keyOf(9), func() (payload, error) {
			return payload{N: 9}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	c1 := testCache(t, dir, 0)
	get(c1) // miss + compute
	check(c1, 0, 0)
	get(c1) // in-process re-read
	check(c1, 1, 0)

	c2 := testCache(t, dir, 0) // second process: memory layer is empty
	get(c2)
	check(c2, 0, 1)
	get(c2) // the disk hit promoted the entry into memory
	check(c2, 1, 1)
}
