// Command conformance runs the repository's conformance suite on its own,
// without the experiment machinery of cmd/rebase:
//
//	conformance                     # full suite: golden corpus + 135 traces
//	conformance -step 10            # every 10th trace, for quick runs
//	conformance trace.cvp.gz ...    # also validate user-supplied trace files
//
// The suite verifies the checked-in golden corpus (file fingerprints,
// conversion statistics, and pinned simulator counters), runs the
// differential battery over the synthetic public suite (codec round trips
// and converter path agreement under every evaluation variant), and runs
// the metamorphic simulator checks (determinism, sweep parallelism
// equivalence, IPC/miss monotonicity). Exit status 0 means every check
// passed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracerebase/internal/conformance"
	"tracerebase/internal/synth"
)

func main() {
	var (
		instrs    = flag.Int("instructions", 0, "instructions per trace in the differential battery (0 = default)")
		simInstrs = flag.Int("sim-instructions", 0, "instructions per trace in the simulator checks (0 = default)")
		warmup    = flag.Uint64("warmup", 0, "warm-up instructions of the simulator checks (0 = default)")
		step      = flag.Int("step", 1, "use every step-th trace of the public suite (1 = all)")
		parallel  = flag.Int("parallel", 0, "concurrent per-trace checks (0 = NumCPU)")
		quiet     = flag.Bool("q", false, "suppress per-check progress output")
	)
	flag.Parse()

	suite := synth.PublicSuite()
	if *step > 1 {
		var sub []synth.Profile
		for i := 0; i < len(suite); i += *step {
			sub = append(sub, suite[i])
		}
		suite = sub
	}
	log := io.Writer(os.Stderr)
	if *quiet {
		log = nil
	}
	err := conformance.SelfTest(conformance.SelfTestConfig{
		Suite:           suite,
		Instructions:    *instrs,
		SimInstructions: *simInstrs,
		Warmup:          *warmup,
		Parallelism:     *parallel,
		TraceFiles:      flag.Args(),
		Log:             log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance: %v\n", err)
		os.Exit(1)
	}
}
