package cpu

import (
	"math/rand"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/mem"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	return Config{
		Name:            "test",
		FetchWidth:      4,
		DispatchWidth:   4,
		IssueWidth:      4,
		RetireWidth:     4,
		ROBSize:         128,
		SQSize:          32,
		FTQSize:         32,
		DecodeQueue:     32,
		DecodeLatency:   3,
		RedirectPenalty: 2,
		Decoupled:       true,
		Rules:           champtrace.RulesPatched,
		Predictor:       "bimodal",
		BTBEntries:      1024,
		BTBWays:         4,
		RASSize:         32,
		Hierarchy:       mem.DefaultHierarchyConfig(),
		L1DPrefetcher:   "none",
		L2Prefetcher:    "none",
		L1IPrefetcher:   "none",
	}
}

func mkALU(ip uint64, srcs []uint8, dst uint8) *champtrace.Instruction {
	in := &champtrace.Instruction{IP: ip}
	for _, s := range srcs {
		in.AddSrcReg(s)
	}
	if dst != 0 {
		in.AddDestReg(dst)
	}
	return in
}

func mkLoad(ip, addr uint64, src, dst uint8) *champtrace.Instruction {
	in := mkALU(ip, []uint8{src}, dst)
	in.AddSrcMem(addr)
	return in
}

func mkStore(ip, addr uint64, src uint8) *champtrace.Instruction {
	in := mkALU(ip, []uint8{src}, 0)
	in.AddDestMem(addr)
	return in
}

func mkCondBr(ip uint64, taken bool, srcs ...uint8) *champtrace.Instruction {
	in := &champtrace.Instruction{IP: ip, IsBranch: true, Taken: taken}
	in.AddSrcReg(champtrace.RegInstructionPointer)
	if len(srcs) == 0 {
		in.AddSrcReg(champtrace.RegFlags)
	}
	for _, s := range srcs {
		in.AddSrcReg(s)
	}
	in.AddDestReg(champtrace.RegInstructionPointer)
	return in
}

func run(t *testing.T, cfg Config, instrs []*champtrace.Instruction) Stats {
	t.Helper()
	return runW(t, cfg, instrs, 0)
}

// runW simulates with a warm-up region excluded from the statistics, hiding
// the cold-cache transient in comparative tests.
func runW(t *testing.T, cfg Config, instrs []*champtrace.Instruction, warmup uint64) Stats {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), warmup, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// straightLine builds n independent ALU instructions looping over a small
// (4 KB) instruction footprint so the L1I warms after the first pass.
func straightLine(n int) []*champtrace.Instruction {
	out := make([]*champtrace.Instruction, n)
	for i := range out {
		out[i] = mkALU(0x400000+uint64(i%1024)*4, []uint8{10}, uint8(40+i%8))
	}
	return out
}

func TestAllInstructionsRetire(t *testing.T) {
	instrs := straightLine(1000)
	st := run(t, testConfig(), instrs)
	if st.Instructions != 1000 {
		t.Fatalf("retired %d instructions, want 1000", st.Instructions)
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
}

func TestIPCBoundedByWidth(t *testing.T) {
	st := run(t, testConfig(), straightLine(5000))
	if ipc := st.IPC(); ipc > float64(testConfig().RetireWidth) {
		t.Fatalf("IPC %.2f exceeds retire width %d", ipc, testConfig().RetireWidth)
	}
}

func TestIndependentBeatsDependent(t *testing.T) {
	n := 5000
	indep := straightLine(n)
	dep := make([]*champtrace.Instruction, n)
	for i := range dep {
		// Every instruction reads the register the previous one wrote.
		dep[i] = mkALU(0x400000+uint64(i%1024)*4, []uint8{40}, 40)
	}
	stI := runW(t, testConfig(), indep, 2000)
	stD := runW(t, testConfig(), dep, 2000)
	if stI.IPC() <= stD.IPC()*1.5 {
		t.Fatalf("independent IPC %.2f should be well above dependent chain IPC %.2f", stI.IPC(), stD.IPC())
	}
	if stD.IPC() > 1.15 {
		t.Fatalf("a serial dependency chain cannot exceed ~1 IPC, got %.2f", stD.IPC())
	}
}

func TestPointerChaseSlowerThanStreaming(t *testing.T) {
	n := 3000
	// Streaming: independent loads, sequential addresses.
	stream := make([]*champtrace.Instruction, n)
	for i := range stream {
		stream[i] = mkLoad(0x400000+uint64(i%1024)*4, 0x10000000+uint64(i)*64, 10, uint8(40+i%4))
	}
	// Pointer chase: each load's address register is the previous load's
	// destination, with cache-hostile strides.
	chase := make([]*champtrace.Instruction, n)
	for i := range chase {
		chase[i] = mkLoad(0x400000+uint64(i%1024)*4, 0x10000000+uint64(i*7919%4096)*4096, 40, 40)
	}
	stS := runW(t, testConfig(), stream, 500)
	stC := runW(t, testConfig(), chase, 500)
	if stS.IPC() < 2*stC.IPC() {
		t.Fatalf("streaming IPC %.3f should dwarf pointer-chase IPC %.3f", stS.IPC(), stC.IPC())
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// Loads that hit a just-written address forward from the SQ and avoid
	// a miss to DRAM: compare against loads to cold addresses.
	n := 2000
	fwd := make([]*champtrace.Instruction, 0, 2*n)
	cold := make([]*champtrace.Instruction, 0, 2*n)
	for i := 0; i < n; i++ {
		addr := 0x20000000 + uint64(i)*4096 // cache-hostile stride
		ip := 0x400000 + uint64(i%512)*8
		fwd = append(fwd,
			mkStore(ip, addr, 10),
			mkLoad(ip+4, addr, 11, 41))
		cold = append(cold,
			mkStore(ip, addr, 10),
			mkLoad(ip+4, addr+2048, 11, 41))
	}
	stF := runW(t, testConfig(), fwd, 500)
	stC := runW(t, testConfig(), cold, 500)
	if stF.IPC() <= stC.IPC() {
		t.Fatalf("forwarded loads IPC %.3f should beat cold loads IPC %.3f", stF.IPC(), stC.IPC())
	}
}

// mispredictStream builds a loop whose conditional branch is taken with
// 50% pseudo-random outcomes — hard for any predictor.
func randomBranches(n int, brSrcs ...uint8) []*champtrace.Instruction {
	r := rand.New(rand.NewSource(5))
	var out []*champtrace.Instruction
	for i := 0; i < n; i++ {
		base := 0x400000 + uint64(i%64)*32
		// A load whose destination may feed the branch.
		out = append(out, mkLoad(base, 0x30000000+uint64(r.Intn(1<<20))*64, 12, 50))
		out = append(out, mkALU(base+4, []uint8{50}, 51))
		out = append(out, mkCondBr(base+8, r.Intn(2) == 0, brSrcs...))
		out = append(out, mkALU(base+12, []uint8{10}, 52))
	}
	return out
}

// TestBranchDependsOnLoadIsSlower is the central mechanism of the paper's
// flag-reg/branch-regs results: a mispredicted branch that depends on a
// long-latency load resolves late, exposing the full penalty; the same
// branch with no producers resolves immediately after dispatch.
func TestBranchDependsOnLoadIsSlower(t *testing.T) {
	indep := randomBranches(3000)          // branch reads only FLAGS; nothing writes FLAGS
	dep := randomBranches(3000, uint8(51)) // branch reads the load-fed register
	stI := runW(t, testConfig(), indep, 1000)
	stD := runW(t, testConfig(), dep, 1000)
	if stD.IPC() >= stI.IPC() {
		t.Fatalf("load-dependent branches IPC %.3f must be below independent branches IPC %.3f",
			stD.IPC(), stI.IPC())
	}
	slowdown := stI.IPC() / stD.IPC()
	if slowdown < 1.05 {
		t.Fatalf("slowdown %.3f too small — misprediction resolution timing not modeled", slowdown)
	}
}

func TestPerfectlyPredictableBranchesAreCheap(t *testing.T) {
	mk := func(taken func(i int) bool) []*champtrace.Instruction {
		var out []*champtrace.Instruction
		for i := 0; i < 3000; i++ {
			base := 0x400000 + uint64(i%16)*16
			out = append(out, mkALU(base, []uint8{10}, 40))
			out = append(out, mkCondBr(base+4, taken(i)))
		}
		return out
	}
	stAlways := runW(t, testConfig(), mk(func(i int) bool { return true }), 500)
	r := rand.New(rand.NewSource(9))
	stRandom := runW(t, testConfig(), mk(func(i int) bool { return r.Intn(2) == 0 }), 500)
	if stAlways.IPC() <= stRandom.IPC() {
		t.Fatalf("predictable branches IPC %.3f should beat random branches IPC %.3f",
			stAlways.IPC(), stRandom.IPC())
	}
	if stAlways.BranchMPKI() > 20 {
		t.Errorf("always-taken loop branch MPKI = %.1f, want near zero", stAlways.BranchMPKI())
	}
	if stRandom.DirMPKI() < 50 {
		t.Errorf("random branch direction MPKI = %.1f, want ~250", stRandom.DirMPKI())
	}
}

func TestDeterminism(t *testing.T) {
	instrs := randomBranches(2000, uint8(51))
	a := run(t, testConfig(), instrs)
	b := run(t, testConfig(), instrs)
	if a != b {
		t.Fatalf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestWarmupExcluded(t *testing.T) {
	instrs := straightLine(4000)
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 1900 || st.Instructions > 2100 {
		t.Fatalf("measured %d instructions, want ~2000 (after warm-up)", st.Instructions)
	}
}

func TestMaxInstructionsStopsRun(t *testing.T) {
	instrs := straightLine(100000)
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 5000 || st.Instructions > 5100 {
		t.Fatalf("measured %d instructions, want ~5000", st.Instructions)
	}
}

func TestLargeICacheFootprintHurts(t *testing.T) {
	// A loop over 16 lines vs a loop over 4096 lines (256 KB, beyond L1I+L2).
	mk := func(lines int) []*champtrace.Instruction {
		var out []*champtrace.Instruction
		for i := 0; i < 20000; i++ {
			ip := 0x400000 + uint64(i%lines)*64
			out = append(out, mkALU(ip, []uint8{10}, 40))
		}
		return out
	}
	small := run(t, testConfig(), mk(16))
	big := run(t, testConfig(), mk(16384))
	if small.IPC() <= big.IPC() {
		t.Fatalf("small footprint IPC %.3f should beat thrashing footprint IPC %.3f", small.IPC(), big.IPC())
	}
	if big.L1I.Misses == 0 {
		t.Fatal("huge instruction footprint produced no L1I misses")
	}
}

func TestInstructionPrefetcherHelps(t *testing.T) {
	// Repeating 512-line instruction loop (32 KB exactly at L1I capacity
	// boundary — with tags/thrash it misses) — next-line prefetching must
	// recover most of the loss.
	mk := func() []*champtrace.Instruction {
		var out []*champtrace.Instruction
		for i := 0; i < 60000; i++ {
			ip := 0x400000 + uint64(i%1024)*64
			out = append(out, mkALU(ip, []uint8{10}, 40))
		}
		return out
	}
	cfgNone := testConfig()
	cfgNone.Decoupled = false
	cfgNL := cfgNone
	cfgNL.L1IPrefetcher = "next-line"
	stNone := run(t, cfgNone, mk())
	stNL := run(t, cfgNL, mk())
	if stNL.IPC() <= stNone.IPC() {
		t.Fatalf("next-line iprefetch IPC %.3f should beat none %.3f", stNL.IPC(), stNone.IPC())
	}
}

func TestDecoupledFrontEndPrefetches(t *testing.T) {
	// With FDIP, FTQ insertion prefetches upcoming lines, hiding L1I miss
	// latency on a large sequential footprint.
	mk := func() []*champtrace.Instruction {
		var out []*champtrace.Instruction
		for i := 0; i < 60000; i++ {
			ip := 0x400000 + uint64(i%8192)*16
			out = append(out, mkALU(ip, []uint8{10}, 40))
		}
		return out
	}
	coupled := testConfig()
	coupled.Decoupled = false
	decoupled := testConfig()
	stC := run(t, coupled, mk())
	stD := run(t, decoupled, mk())
	if stD.IPC() <= stC.IPC() {
		t.Fatalf("decoupled FE IPC %.3f should beat coupled %.3f on streaming code", stD.IPC(), stC.IPC())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := Config{}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero config")
	}
	cfg := testConfig()
	cfg.SQSize, cfg.FTQSize, cfg.DecodeQueue = 0, 0, 0
	cfg.BTBEntries, cfg.BTBWays, cfg.RASSize = 0, 0, 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected defaultable config: %v", err)
	}
	if cfg.SQSize == 0 || cfg.FTQSize == 0 || cfg.BTBEntries == 0 {
		t.Error("Validate did not fill defaults")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted invalid config")
	}
	cfg2 := testConfig()
	cfg2.Predictor = "bogus"
	if _, err := New(cfg2); err == nil {
		t.Error("New accepted bogus predictor")
	}
	cfg3 := testConfig()
	cfg3.L1IPrefetcher = "bogus"
	if _, err := New(cfg3); err == nil {
		t.Error("New accepted bogus iprefetcher")
	}
	cfg4 := testConfig()
	cfg4.L1DPrefetcher = "bogus"
	if _, err := New(cfg4); err == nil {
		t.Error("New accepted bogus dprefetcher")
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Instructions: 2000, Cycles: 1000, Mispredicts: 10, DirMispredicts: 6, TargetMispredicts: 5, ReturnMispredicts: 2}
	if s.IPC() != 2.0 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.BranchMPKI() != 5.0 || s.DirMPKI() != 3.0 || s.TargetMPKI() != 2.5 || s.ReturnMPKI() != 1.0 {
		t.Errorf("MPKIs = %v %v %v %v", s.BranchMPKI(), s.DirMPKI(), s.TargetMPKI(), s.ReturnMPKI())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.BranchMPKI() != 0 || zero.DirMPKI() != 0 || zero.TargetMPKI() != 0 || zero.ReturnMPKI() != 0 {
		t.Error("zero stats should have zero derived metrics")
	}
	cs := CacheStat{Misses: 30}
	if cs.MPKI(10000) != 3.0 || cs.MPKI(0) != 0 {
		t.Error("CacheStat.MPKI wrong")
	}
}

func TestBTBMissesReported(t *testing.T) {
	// Many distinct taken branches on a cold BTB must register misses.
	var instrs []*champtrace.Instruction
	for i := 0; i < 400; i++ {
		instrs = append(instrs, mkALU(0x400000+uint64(i)*64, []uint8{10}, 40))
		br := mkCondBr(0x400000+uint64(i)*64+4, true)
		instrs = append(instrs, br)
	}
	st := run(t, testConfig(), instrs)
	if st.BTBMisses == 0 {
		t.Fatalf("cold BTB recorded no misses: %+v", st)
	}
}

func TestStoreWritesCountAtRetire(t *testing.T) {
	var instrs []*champtrace.Instruction
	for i := 0; i < 500; i++ {
		instrs = append(instrs, mkStore(0x400000+uint64(i%256)*4, 0x10000000+uint64(i)*64, 10))
	}
	st := run(t, testConfig(), instrs)
	if st.L1D.Accesses < 500 {
		t.Fatalf("store retirement produced only %d L1D accesses", st.L1D.Accesses)
	}
	if st.Stores != 500 {
		t.Fatalf("Stores = %d", st.Stores)
	}
}

func TestMultiAddressLoadTouchesBothLines(t *testing.T) {
	// A mem-footprint-style record with two source addresses accesses
	// two distinct cachelines.
	single := &champtrace.Instruction{IP: 0x400000}
	single.AddSrcReg(10)
	single.AddDestReg(40)
	single.AddSrcMem(0x20000000)
	double := &champtrace.Instruction{IP: 0x400000}
	double.AddSrcReg(10)
	double.AddDestReg(40)
	double.AddSrcMem(0x20000000)
	double.AddSrcMem(0x20000040)
	mk := func(in *champtrace.Instruction) []*champtrace.Instruction {
		var out []*champtrace.Instruction
		for i := 0; i < 200; i++ {
			c := *in
			c.IP = 0x400000 + uint64(i%64)*4
			c.SrcMem[0] = 0x20000000 + uint64(i)*4096
			if c.SrcMem[1] != 0 {
				c.SrcMem[1] = c.SrcMem[0] + 64
			}
			out = append(out, &c)
		}
		return out
	}
	stS := run(t, testConfig(), mk(single))
	stD := run(t, testConfig(), mk(double))
	if stD.L1D.Accesses <= stS.L1D.Accesses {
		t.Fatalf("two-address loads accessed %d lines vs %d for one-address",
			stD.L1D.Accesses, stS.L1D.Accesses)
	}
}

func TestDecodeQueueBackpressure(t *testing.T) {
	// A tiny decode queue must not deadlock or drop instructions.
	cfg := testConfig()
	cfg.DecodeQueue = 2
	st := run(t, cfg, straightLine(3000))
	if st.Instructions != 3000 {
		t.Fatalf("retired %d of 3000 with tiny decode queue", st.Instructions)
	}
}

func TestROBSizeOne(t *testing.T) {
	// Degenerate ROB: strictly serial execution, still correct.
	cfg := testConfig()
	cfg.ROBSize = 1
	st := run(t, cfg, straightLine(500))
	if st.Instructions != 500 {
		t.Fatalf("retired %d of 500 with ROB=1", st.Instructions)
	}
	if st.IPC() > 1.0 {
		t.Fatalf("ROB=1 cannot exceed 1 IPC, got %.3f", st.IPC())
	}
}
