// Cvp-flaws: reproduces the two CVP-1 reference-simulator flaws the paper's
// introduction (§1) uses to motivate careful trace handling, by running raw
// CVP-1 traces on the championship-style model with and without the
// CVP-2-era fixes:
//
//  1. the data memory footprint is over-estimated for base-update loads
//     (transfer size x ALL output registers), and
//  2. updated base registers only become available when the memory access
//     completes, serializing pointer-walking loops on memory latency.
package main

import (
	"fmt"
	"log"

	"tracerebase/internal/cvp"
	"tracerebase/internal/cvpsim"
	"tracerebase/internal/synth"
)

func main() {
	fmt.Println("CVP-1 reference simulator flaws (paper §1)")
	fmt.Println()
	fmt.Printf("%-16s | %13s %13s %7s | %11s %11s %8s\n",
		"trace", "IPC (flawed)", "IPC (CVP-2)", "delta", "MB (flawed)", "MB (CVP-2)", "inflate")

	for _, name := range []string{"crypto_0", "crypto_5", "compute_fp_2", "compute_int_40"} {
		p, ok := synth.FindPublic(name)
		if !ok {
			log.Fatalf("trace %s not found", name)
		}
		instrs, err := p.Generate(150000)
		if err != nil {
			log.Fatal(err)
		}
		flawed := runModel(instrs, false)
		fixed := runModel(instrs, true)
		fmt.Printf("%-16s | %13.3f %13.3f %+6.1f%% | %11.2f %11.2f %+6.1f%%\n",
			name, flawed.IPC(), fixed.IPC(), 100*(fixed.IPC()/flawed.IPC()-1),
			float64(flawed.MemBytes)/(1<<20), float64(fixed.MemBytes)/(1<<20),
			100*(float64(flawed.MemBytes)/float64(fixed.MemBytes)-1))
	}

	fmt.Println()
	fmt.Println("The same two behaviours are what the paper's base-update and mem-footprint")
	fmt.Println("improvements carry over to the ChampSim side of the ecosystem (§3.1).")
}

func runModel(instrs []*cvp.Instruction, fixes bool) cvpsim.Stats {
	cfg := cvpsim.DefaultConfig()
	cfg.CVP2Fixes = fixes
	st, err := cvpsim.Run(cvp.NewSliceSource(instrs), cfg)
	if err != nil {
		log.Fatal(err)
	}
	return st
}
