package mem

import (
	"math/rand"
	"testing"
)

func TestNewReplacement(t *testing.T) {
	if p, ok := NewReplacement("lru", 4, 2); !ok || p != nil {
		t.Error("lru should map to the built-in nil policy")
	}
	if p, ok := NewReplacement("", 4, 2); !ok || p != nil {
		t.Error("empty policy should default to LRU")
	}
	for _, name := range []string{"srrip", "drrip"} {
		p, ok := NewReplacement(name, 4, 2)
		if !ok || p == nil || p.Name() != name {
			t.Errorf("NewReplacement(%s) = %v, %v", name, p, ok)
		}
	}
	if _, ok := NewReplacement("bogus", 4, 2); ok {
		t.Error("accepted bogus policy")
	}
}

func TestSRRIPPromoteAndAge(t *testing.T) {
	s := NewSRRIP(1, 4)
	// Fill all ways; none touched: all at distant RRPV.
	for w := 0; w < 4; w++ {
		s.Fill(0, w, false)
	}
	// Hit way 2: promoted to RRPV 0.
	s.Hit(0, 2)
	// The victim must not be way 2.
	if v := s.Victim(0); v == 2 {
		t.Fatalf("victim = recently hit way 2")
	}
	// A prefetch insertion is the most distant: first victim.
	s2 := NewSRRIP(1, 2)
	s2.Fill(0, 0, true)  // prefetch: RRPV max
	s2.Fill(0, 1, false) // demand: max-1
	if v := s2.Victim(0); v != 0 {
		t.Fatalf("victim = %d, want the prefetched way 0", v)
	}
}

func TestSRRIPVictimTerminates(t *testing.T) {
	s := NewSRRIP(1, 4)
	for w := 0; w < 4; w++ {
		s.Fill(0, w, false)
		s.Hit(0, w) // everything at RRPV 0
	}
	// Aging must eventually produce a victim.
	v := s.Victim(0)
	if v < 0 || v >= 4 {
		t.Fatalf("victim = %d", v)
	}
}

func TestDRRIPDueling(t *testing.T) {
	d := NewDRRIP(64, 4)
	// Fills in the SRRIP leader (set 0) push psel down; bimodal leader
	// (set 1) pushes it up.
	for i := 0; i < 10; i++ {
		d.Fill(1, i%4, false)
	}
	if d.psel <= 0 {
		t.Fatalf("psel = %d after bimodal-leader fills, want positive", d.psel)
	}
	for i := 0; i < 30; i++ {
		d.Fill(0, i%4, false)
	}
	if d.psel >= 10 {
		t.Fatalf("psel = %d after SRRIP-leader fills, want lowered", d.psel)
	}
	// Follower sets must fill without panicking under either regime and
	// victims stay in range.
	for i := 0; i < 100; i++ {
		d.Fill(7, i%4, i%3 == 0)
		if v := d.Victim(7); v < 0 || v >= 4 {
			t.Fatalf("victim %d out of range", v)
		}
		d.Hit(7, i%4)
	}
}

// Hot lines re-referenced between scan BURSTS longer than the
// associativity: LRU flushes the hot lines on every burst, while RRIP
// inserts scans at a distant re-reference prediction and sacrifices them
// instead — the classic scan-resistance result.
func TestSRRIPBeatsLRUOnScan(t *testing.T) {
	run := func(policy string) uint64 {
		c := NewCache(Config{Name: "T", Sets: 16, Ways: 4, Latency: 2, MSHRs: 8, Policy: policy}, &flat{latency: 100})
		cycle := uint64(0)
		hot := []uint64{0x0000, 0x10000} // both map to set 0
		scan := uint64(0x100000)
		for i := 0; i < 2000; i++ {
			cycle += 400
			// Hot lines are re-referenced several times per round
			// (promoting them to near re-reference in RRIP terms).
			for pass := 0; pass < 3; pass++ {
				for _, hline := range hot {
					c.Access(hline, cycle+uint64(pass), Read)
				}
			}
			// A burst of 4 never-reused lines into the same set —
			// exactly the associativity, enough to flush LRU.
			for b := 0; b < 4; b++ {
				scan += LineSize * 16 // stay in set 0
				c.Access(scan, cycle+uint64(b)+8, Read)
			}
		}
		return c.Stats().Hits
	}
	lru := run("lru")
	srrip := run("srrip")
	if srrip <= lru {
		t.Errorf("srrip hits %d <= lru hits %d on burst-scan mix", srrip, lru)
	}
	if srrip < 3000 {
		t.Errorf("srrip hits %d — hot lines not retained across bursts", srrip)
	}
}

func TestCachePanicsOnBogusPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache accepted bogus policy")
		}
	}()
	NewCache(Config{Name: "T", Sets: 4, Ways: 2, Latency: 1, Policy: "bogus"}, &flat{latency: 1})
}

// Property: victims are always valid way indices for random operation
// sequences under both policies.
func TestQuickReplacementBounds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, name := range []string{"srrip", "drrip"} {
		p, _ := NewReplacement(name, 8, 4)
		for i := 0; i < 5000; i++ {
			set := r.Intn(8)
			switch r.Intn(3) {
			case 0:
				p.Hit(set, r.Intn(4))
			case 1:
				p.Fill(set, r.Intn(4), r.Intn(2) == 0)
			default:
				if v := p.Victim(set); v < 0 || v >= 4 {
					t.Fatalf("%s: victim %d out of range", name, v)
				}
			}
		}
	}
}
