package tracestore

import (
	"reflect"
	"sync"
	"testing"
)

// TestEvictionDoesNotUnmapInUseSlab races both eviction paths against a
// referenced slab: with MaxResident=1 every churned conversion evicts the
// held slab from residency, and a tiny MaxBytes forces disk LRU eviction
// of its file as well. Throughout, a reader hammers the held mapping —
// under -race and on real mmap pages, an unmap of an in-use slab would
// fault or corrupt the read. The contract: eviction only drops the
// store's residency hold; the mapping lives until the last Release.
func TestEvictionDoesNotUnmapInUseSlab(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxResident: 1, MaxBytes: 1 << 15})

	keyHeld := testKey(1000)
	want := testRecords(400, 5)
	held, err := s.GetOrConvert(keyHeld, converterFor(400, 5, nil))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := held.Records()
				if len(recs) != len(want) || recs[0].IP != want[0].IP || recs[len(recs)-1].IP != want[len(recs)-1].IP {
					t.Error("held slab content changed under eviction churn")
					return
				}
			}
		}()
	}

	// Churn: every conversion both steals the single residency slot and
	// pushes the disk index past its bound.
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			for i := 0; i < 25; i++ {
				salt := uint64(w*1000 + i)
				sl, err := s.GetOrConvert(testKey(2000+salt), converterFor(300, salt, nil))
				if err != nil {
					t.Errorf("churn GetOrConvert: %v", err)
					return
				}
				if sl.Len() != 300 {
					t.Errorf("churn slab has %d records, want 300", sl.Len())
				}
				sl.Release()
			}
		}(w)
	}
	churn.Wait()
	close(stop)
	readers.Wait()

	// The held slab survived every eviction intact and was never unmapped.
	if !reflect.DeepEqual(held.Records(), want) {
		t.Fatal("held slab records differ after eviction churn")
	}
	s.mu.Lock()
	destroyed, resident := held.destroyed, held.resident
	s.mu.Unlock()
	if destroyed {
		t.Fatal("slab backing memory released while still referenced")
	}
	if resident {
		t.Fatal("churn should have evicted the held slab from residency (MaxResident=1)")
	}

	// With residency already dropped, the last Release frees the mapping.
	held.Release()
	s.mu.Lock()
	destroyed = held.destroyed
	s.mu.Unlock()
	if !destroyed {
		t.Fatal("non-resident slab should be destroyed at its last Release")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("churn should have caused disk evictions: %+v", st)
	}
}
