package experiments

import (
	"fmt"
	"io"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/stats"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

// FrontEndAblationResult quantifies §4.4's closing argument (after Ishii et
// al.): a decoupled, fetch-directed front-end changes the conclusions of
// instruction-prefetching studies. We measure the geomean speedup of a
// representative IPC-1 prefetcher under the contest's coupled front-end and
// under a decoupled front-end, on the same traces.
type FrontEndAblationResult struct {
	Prefetcher string
	// CoupledSpeedup and DecoupledSpeedup are geomean IPC ratios of
	// prefetcher-on over prefetcher-off under each front-end.
	CoupledSpeedup, DecoupledSpeedup float64
}

// FrontEndAblation runs the ablation over the given IPC-1 traces (nil =
// an icache-heavy server subset) for each prefetcher in Table3Prefetchers.
func FrontEndAblation(cfg SweepConfig, suite []synth.IPC1Trace) ([]FrontEndAblationResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if suite == nil {
		for _, name := range []string{"server_023", "server_030", "server_033", "server_037"} {
			tr, ok := synth.FindIPC1(name)
			if !ok {
				return nil, fmt.Errorf("experiments: trace %s missing", name)
			}
			suite = append(suite, tr)
		}
	}

	type key struct {
		pf        string
		decoupled bool
	}
	ratios := map[key][]float64{}

	opts := core.OptionsAll()
	for ti, trc := range suite {
		// Generation and conversion are deferred into the first cache
		// miss; the 18 simulations re-read the shared value slab through
		// Reset without re-converting or boxing records. With a slab store
		// the conversion additionally resolves through the store.
		var src *champtrace.ValuesSource
		var convStats core.Stats
		var slab *tracestore.Slab
		convert := func() error {
			if src != nil {
				return nil
			}
			generate := func() ([]cvp.Instruction, error) {
				return trc.Profile.GenerateBatch(cfg.Instructions)
			}
			if cfg.Slabs != nil {
				sl, err := acquireSlab(cfg.Slabs, &trc.Profile, opts, cfg.Instructions, generate)
				if err != nil {
					return err
				}
				slab = sl
				convStats = sl.Conv()
				src = champtrace.NewValuesSource(sl.Records())
				return nil
			}
			instrs, err := generate()
			if err != nil {
				return err
			}
			recs, cs, err := core.ConvertAllBatch(cvp.NewValuesSource(instrs), opts)
			if err != nil {
				return err
			}
			convStats = cs
			src = champtrace.NewValuesSource(recs)
			return nil
		}
		releaseSlab := func() {
			if slab != nil {
				slab.Release()
				slab = nil
			}
		}
		// mkSource re-reads the shared value slab from the start; the
		// checkpoint warmer and the resume each take a fresh pass, and the
		// calls are strictly sequential, so Reset-sharing is safe here.
		mkSource := func() (champtrace.Source, func() core.Stats, func()) {
			src.Reset()
			return src, func() core.Stats { return convStats }, func() {}
		}
		runOne := func(simCfg sim.Config) (Result, error) {
			compute := func() (Result, error) {
				if err := convert(); err != nil {
					return Result{}, err
				}
				if cfg.Checkpoints != nil && simCfg.SamplePeriod > 0 && cfg.Warmup > 0 {
					// Coupled and decoupled front-ends share WarmIdentity,
					// so each (trace, prefetcher) pair warms once here.
					k := checkpointKey(&trc.Profile, opts, simCfg, cfg.Instructions, cfg.Warmup)
					res, ok, err := runCheckpointed(cfg.Checkpoints, cfg.ckptGate, k, mkSource, simCfg, cfg.Warmup)
					if err != nil {
						return Result{}, err
					}
					if ok {
						return res, nil
					}
				}
				src.Reset()
				st, err := sim.Run(src, simCfg, cfg.Warmup, 0)
				if err != nil {
					return Result{}, err
				}
				return Result{IPC: st.IPC(), Sim: st, Conv: convStats}, nil
			}
			var res Result
			var err error
			var k resultcache.Key
			if cfg.Cache != nil || cfg.Exp != nil {
				k = cacheKey(&trc.Profile, opts, simCfg, cfg.Instructions, cfg.Warmup)
			}
			if cfg.Cache == nil {
				res, err = compute()
			} else {
				res, err = cfg.Cache.GetOrCompute(k, compute)
			}
			if err == nil {
				// The front-end style is the cell's variant; the Decoupled
				// bit is already part of the config identity in the key.
				variant := "coupled"
				if simCfg.Decoupled {
					variant = "decoupled"
				}
				cfg.recordCell(&trc.Profile, variant, simCfg, k, res)
			}
			return res, err
		}
		for _, decoupled := range []bool{false, true} {
			mk := func(pf string) sim.Config {
				c := sim.ConfigIPC1(pf, rulesFor(opts))
				c.NoCycleSkip = cfg.NoSkip
				cfg.applySampling(&c)
				c.Decoupled = decoupled
				if decoupled {
					c.FTQSize = 64
				}
				return c
			}
			base, err := runOne(mk("none"))
			if err != nil {
				releaseSlab()
				return nil, err
			}
			for _, pf := range Table3Prefetchers {
				st, err := runOne(mk(pf))
				if err != nil {
					releaseSlab()
					return nil, err
				}
				k := key{pf, decoupled}
				ratios[k] = append(ratios[k], st.IPC/base.IPC)
			}
		}
		releaseSlab()
		if cfg.Progress != nil {
			cfg.Progress(ti+1, len(suite))
		}
	}

	out := make([]FrontEndAblationResult, 0, len(Table3Prefetchers))
	for _, pf := range Table3Prefetchers {
		out = append(out, FrontEndAblationResult{
			Prefetcher:       prefetcherDisplay[pf],
			CoupledSpeedup:   stats.Geomean(ratios[key{pf, false}]),
			DecoupledSpeedup: stats.Geomean(ratios[key{pf, true}]),
		})
	}
	return out, nil
}

// RenderFrontEndAblation prints the ablation table.
func RenderFrontEndAblation(w io.Writer, rows []FrontEndAblationResult) {
	fmt.Fprintln(w, "Front-end ablation (§4.4, after Ishii et al.): instruction-prefetcher")
	fmt.Fprintln(w, "speedups under the IPC-1 coupled front-end vs a decoupled (FDIP) front-end")
	fmt.Fprintf(w, "  %-10s %14s %16s\n", "prefetcher", "coupled", "decoupled(FDIP)")
	var coupledGain, decoupledGain []float64
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %14.4f %16.4f\n", r.Prefetcher, r.CoupledSpeedup, r.DecoupledSpeedup)
		coupledGain = append(coupledGain, r.CoupledSpeedup)
		decoupledGain = append(decoupledGain, r.DecoupledSpeedup)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "  geomean speedup: coupled %.4f, decoupled %.4f — the decoupled\n",
			stats.Geomean(coupledGain), stats.Geomean(decoupledGain))
		fmt.Fprintln(w, "  front-end's own prefetching absorbs much of the dedicated prefetchers' gain.")
	}
}
