// Quickstart: the complete pipeline in one page — synthesize a CVP-1
// trace, convert it with the original and the improved cvp2champsim
// converter, simulate both on the ChampSim develop model, and show how much
// the trace-conversion fidelity changes the projected IPC.
package main

import (
	"fmt"
	"log"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

func main() {
	// 1. A workload: one of the 135 synthetic CVP-1 public traces.
	profile, ok := synth.FindPublic("compute_int_46")
	if !ok {
		log.Fatal("trace not found")
	}
	instrs, err := profile.Generate(120000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %d CVP-1 instructions (%s category)\n",
		profile.Name, len(instrs), profile.Category)

	// 2. Convert twice: original converter vs all six improvements.
	run := func(label string, opts core.Options, rules champtrace.RuleSet) sim.Stats {
		recs, cst, err := core.ConvertAll(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigDevelop(rules), 40000, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %d records  IPC %.3f  branch MPKI %.2f  (base-update loads: %d, flag dsts added: %d)\n",
			label, cst.Out, st.IPC(), st.BranchMPKI(), cst.BaseUpdateLoads, cst.FlagDstAdded)
		return st
	}
	orig := run("original:", core.OptionsNone(), champtrace.RulesOriginal)
	// branch-regs traces need the paper's §3.2.2 ChampSim patch.
	impr := run("improved:", core.OptionsAll(), champtrace.RulesPatched)

	// 3. The paper's headline: conversion fidelity changes the result.
	fmt.Printf("\nIPC difference from higher-fidelity conversion: %+.1f%%\n",
		100*(impr.IPC()/orig.IPC()-1))
}
