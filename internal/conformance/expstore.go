package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"tracerebase/internal/experiments"
	"tracerebase/internal/expstore"
	"tracerebase/internal/synth"
)

// CheckExpStoreTransparency is the differential oracle for the columnar
// experiment store: the store must be invisible in the output. It runs the
// same sweep four ways — store-off, cold store (every cell appended, then
// read back), warm store (a fresh Store over the same directory, modelling
// a second process, deduplicating every offered cell), and warm store with
// one block corrupted on disk — and requires byte-identical rendered output
// (and structurally identical results) from all of them. The corrupted
// block must be caught by checksum, discarded with a pointed warning, and
// reported as read-back misses — never served, never a crash — and a
// follow-up sweep must re-append exactly the lost cells. Finally, the
// pruned query path over the populated store must return the same rows as
// the brute-force full scan while reading fewer bytes.
func CheckExpStoreTransparency(profiles []synth.Profile, instructions int, warmup uint64) error {
	dir, err := os.MkdirTemp("", "tracerebase-expcheck-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	baseCfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
		Variants:     nil, // all ten: one cell per (trace, variant)
	}
	render := func(res []experiments.TraceResult) []byte {
		var buf bytes.Buffer
		experiments.RenderFig1(&buf, experiments.Fig1(res))
		experiments.RenderFig4(&buf, experiments.Fig4(res))
		experiments.RenderFig5(&buf, experiments.Fig5(res))
		return buf.Bytes()
	}
	sweep := func(store *expstore.Store, misses *int) ([]byte, []experiments.TraceResult, error) {
		cfg := baseCfg
		cfg.Exp = store
		if misses != nil {
			cfg.ExpMisses = func(n int) { *misses += n }
		}
		res, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return nil, nil, err
		}
		return render(res), res, nil
	}
	open := func(warn func(string, ...any)) (*expstore.Store, error) {
		// Small blocks so the sweep spans several and one can be damaged
		// without losing everything.
		return expstore.Open(expstore.Config{Dir: dir, BlockCells: 4, Warn: warn})
	}

	want, wantRes, err := sweep(nil, nil)
	if err != nil {
		return fmt.Errorf("store-off sweep: %w", err)
	}

	jobs := uint64(len(profiles) * len(experiments.Variants()))
	cold, err := open(nil)
	if err != nil {
		return err
	}
	misses := 0
	coldOut, coldRes, err := sweep(cold, &misses)
	coldStats := cold.Stats()
	cold.Close()
	if err != nil {
		return fmt.Errorf("cold-store sweep: %w", err)
	}
	if !bytes.Equal(coldOut, want) {
		return fmt.Errorf("cold-store sweep output differs from store-off output")
	}
	if !reflect.DeepEqual(coldRes, wantRes) {
		return fmt.Errorf("cold-store sweep results differ structurally from store-off results")
	}
	if misses != 0 {
		return fmt.Errorf("cold store missed %d cells on read-back, want 0", misses)
	}
	if coldStats.Appends != jobs || coldStats.DupSkipped != 0 || coldStats.CellsWritten != jobs {
		return fmt.Errorf("cold store: %d appends, %d dups, %d cells written, want %d, 0, %d",
			coldStats.Appends, coldStats.DupSkipped, coldStats.CellsWritten, jobs, jobs)
	}

	// A fresh Store over the same directory stands in for a second process:
	// every offered cell deduplicates against disk, nothing is rewritten.
	warm, err := open(nil)
	if err != nil {
		return err
	}
	misses = 0
	warmOut, warmRes, err := sweep(warm, &misses)
	warmStats := warm.Stats()
	warm.Close()
	if err != nil {
		return fmt.Errorf("warm-store sweep: %w", err)
	}
	if !bytes.Equal(warmOut, want) {
		return fmt.Errorf("warm-store sweep output differs from store-off output")
	}
	if !reflect.DeepEqual(warmRes, wantRes) {
		return fmt.Errorf("warm-store sweep results differ structurally from store-off results")
	}
	if misses != 0 {
		return fmt.Errorf("warm store missed %d cells on read-back, want 0", misses)
	}
	if warmStats.DupSkipped != jobs || warmStats.BlocksWritten != 0 {
		return fmt.Errorf("warm store: %d dups, %d blocks written, want %d and 0",
			warmStats.DupSkipped, warmStats.BlocksWritten, jobs)
	}

	// Corrupt one block mid-data (the byte just below the footer is always
	// inside the last column's checksummed region) and re-run with a fresh
	// Store. The damage must be caught by checksum, warned about, and the
	// block's cells surface as read-back misses — served from the in-flight
	// results, so the output must not move.
	victim, lostCells, err := corruptOneBlock(dir)
	if err != nil {
		return err
	}
	var warns warnLog
	hurt, err := open(warns.warnf)
	if err != nil {
		return err
	}
	misses = 0
	hurtOut, _, err := sweep(hurt, &misses)
	hurtStats := hurt.Stats()
	hurt.Close()
	if err != nil {
		return fmt.Errorf("sweep over corrupted block: %w", err)
	}
	if !bytes.Equal(hurtOut, want) {
		return fmt.Errorf("corrupted block leaked into the output")
	}
	if hurtStats.Corrupt != 1 || misses != lostCells {
		return fmt.Errorf("corrupted-block run: %d corrupt, %d misses, want 1 and %d",
			hurtStats.Corrupt, misses, lostCells)
	}
	if w := warns.String(); !strings.Contains(w, "corrupt block") {
		return fmt.Errorf("corrupted-block run produced no pointed warning (got %q)", w)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		return fmt.Errorf("corrupt block %s was not removed", victim)
	}

	// The lost cells reconvert: the next sweep re-appends exactly them.
	repair, err := open(nil)
	if err != nil {
		return err
	}
	misses = 0
	repairOut, _, err := sweep(repair, &misses)
	repairStats := repair.Stats()
	queryErr := checkQueryAgainstFullScan(repair)
	repair.Close()
	if err != nil {
		return fmt.Errorf("repair sweep: %w", err)
	}
	if !bytes.Equal(repairOut, want) {
		return fmt.Errorf("repair sweep output differs from store-off output")
	}
	if misses != 0 {
		return fmt.Errorf("repair sweep missed %d cells on read-back, want 0", misses)
	}
	if repairStats.CellsWritten != uint64(lostCells) || repairStats.DupSkipped != jobs-uint64(lostCells) {
		return fmt.Errorf("repair sweep: %d cells written, %d dups, want %d and %d",
			repairStats.CellsWritten, repairStats.DupSkipped, lostCells, jobs-uint64(lostCells))
	}
	return queryErr
}

// checkQueryAgainstFullScan asserts the block-pruned query path returns
// the same rows as the brute-force full scan over a populated store,
// reading no more bytes.
func checkQueryAgainstFullScan(store *expstore.Store) error {
	for _, src := range []string{
		"group-by=category stat=count,mean,p99",
		"variant=All_imps,No_imp group-by=variant stat=geomean",
		"category=srv metric=l1i_misses stat=sum,max",
	} {
		q, err := expstore.ParseQuery(src)
		if err != nil {
			return err
		}
		pruned, err := store.Query(q)
		if err != nil {
			return fmt.Errorf("query %q: %w", src, err)
		}
		full, err := store.FullScan(q)
		if err != nil {
			return fmt.Errorf("full scan %q: %w", src, err)
		}
		if !reflect.DeepEqual(pruned.Rows, full.Rows) {
			return fmt.Errorf("query %q: pruned rows differ from full scan", src)
		}
		if pruned.Stats.BytesRead > full.Stats.BytesRead {
			return fmt.Errorf("query %q read %d bytes, more than the full scan's %d",
				src, pruned.Stats.BytesRead, full.Stats.BytesRead)
		}
	}
	return nil
}

// corruptOneBlock flips a data byte in one block file under dir and
// returns the victim path and its cell count (read from the header before
// the damage).
func corruptOneBlock(dir string) (string, int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.expb"))
	if err != nil {
		return "", 0, err
	}
	if len(matches) == 0 {
		return "", 0, fmt.Errorf("no block files found under %s", dir)
	}
	victim := matches[0]
	buf, err := os.ReadFile(victim)
	if err != nil {
		return "", 0, err
	}
	cells := int(binary.LittleEndian.Uint64(buf[40:48]))
	footerOff := binary.LittleEndian.Uint64(buf[48:56])
	buf[footerOff-1] ^= 0xff
	return victim, cells, os.WriteFile(victim, buf, 0o644)
}
