module tracerebase

go 1.23
