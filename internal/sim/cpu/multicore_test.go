package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracerebase/internal/champtrace"
)

// TestMultiIdleCoresNeverRun: nil sources stay frozen and report zeros
// while an active neighbor runs to completion.
func TestMultiIdleCoresNeverRun(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 3
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := randomStream(rand.New(rand.NewSource(7)), 2000)
	srcs := make([]champtrace.Source, 3)
	srcs[1] = champtrace.NewSliceSource(stream)
	out, err := m.Run(srcs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Instructions != 2000 {
		t.Errorf("active core retired %d of 2000", out[1].Instructions)
	}
	for _, i := range []int{0, 2} {
		if out[i] != (Stats{}) {
			t.Errorf("idle core %d reports %+v", i, out[i])
		}
	}
}

// TestMultiRejectsBadShapes pins the constructor- and run-time guards of
// the multi-core entry points.
func TestMultiRejectsBadShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 0
	if _, err := NewMulti(cfg); err == nil {
		t.Error("NewMulti accepted Cores=0")
	}
	cfg.Cores = 2
	cfg.SamplePeriod = 1000
	if _, err := NewMulti(cfg); err == nil {
		t.Error("NewMulti accepted a sampled multi-core config")
	}
	cfg.SamplePeriod = 0
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(make([]champtrace.Source, 3), 0, 0); err == nil {
		t.Error("Run accepted a source count different from the core count")
	}
	// The single-core pipeline must refuse a multi-core configuration
	// rather than silently simulate one core of it.
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(champtrace.NewSliceSource(nil), 0, 0); err == nil {
		t.Error("single-core Run accepted Cores=2")
	}
}

// TestQuickMultiCoreGeometries drives the lockstep engine across randomized
// core counts, shared-LLC geometries, replacement policies, and port
// bandwidths: every active core must retire its whole stream, respect the
// retire-width IPC bound, and the whole system must be deterministic.
func TestQuickMultiCoreGeometries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cores := 1 + r.Intn(4)
		cfg := testConfig()
		cfg.Cores = cores
		cfg.Hierarchy.LLC.Sets = 1 << (4 + r.Intn(4))
		cfg.Hierarchy.LLC.Ways = 1 << (1 + r.Intn(3))
		cfg.Hierarchy.LLC.MSHRs = 1 + r.Intn(8)
		if r.Intn(2) == 1 {
			cfg.Hierarchy.LLC.Policy = "shared-srrip"
		}
		cfg.MemBandwidth = uint64(r.Intn(5))
		const n = 800
		streams := make([][]*champtrace.Instruction, cores)
		for i := range streams {
			streams[i] = randomStream(r, n)
		}
		run := func() []Stats {
			m, err := NewMulti(cfg)
			if err != nil {
				t.Logf("NewMulti: %v", err)
				return nil
			}
			srcs := make([]champtrace.Source, cores)
			for i := range srcs {
				srcs[i] = champtrace.NewSliceSource(streams[i])
			}
			out, err := m.Run(srcs, 0, 0)
			if err != nil {
				t.Logf("Run: %v", err)
				return nil
			}
			return append([]Stats(nil), out...)
		}
		a, b := run(), run()
		if a == nil || b == nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("cores=%d: core %d diverges across identical runs", cores, i)
				return false
			}
			if a[i].Instructions != n {
				t.Logf("cores=%d: core %d retired %d of %d", cores, i, a[i].Instructions, n)
				return false
			}
			if a[i].Cycles == 0 || a[i].IPC() > float64(cfg.RetireWidth) {
				t.Logf("cores=%d: core %d IPC %v out of range", cores, i, a[i].IPC())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
