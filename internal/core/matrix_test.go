package core

import (
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
)

// diffCounter identifies one DiffStats counter in the matrix assertions.
type diffCounter int

const (
	cSplit diffCounter = iota
	cBranchType
	cSrcRegs
	cDstRegs
	cMemAddrs
	numDiffCounters
)

func (c diffCounter) String() string {
	return [...]string{"SplitMicroOps", "BranchTypeChanged", "SrcRegsChanged", "DstRegsChanged", "MemAddrsChanged"}[c]
}

func counterValues(d DiffStats) [numDiffCounters]uint64 {
	return [numDiffCounters]uint64{d.SplitMicroOps, d.BranchTypeChanged, d.SrcRegsChanged, d.DstRegsChanged, d.MemAddrsChanged}
}

// flagEffect describes which DiffStats counters one improvement flag is
// allowed to move (may) and which it must move on a trace exercising every
// conversion path (must).
type flagEffect struct {
	name      string
	enable    func(*Options)
	may, must []diffCounter
}

// The effect table is the contract of Table 1: each improvement touches
// exactly the record aspects its §3 description claims.
var flagEffects = []flagEffect{
	// mem-regs rewrites the register sets of memory instructions: folded
	// multi-destinations leave the sources, real destinations replace the
	// padded X0.
	{"mem-regs", func(o *Options) { o.MemRegs = true },
		[]diffCounter{cSrcRegs, cDstRegs}, []diffCounter{cSrcRegs, cDstRegs}},
	// base-update splits writeback accesses into micro-op pairs and drops
	// the base register from the memory micro-op's register sets.
	{"base-update", func(o *Options) { o.BaseUpdate = true },
		[]diffCounter{cSplit, cSrcRegs, cDstRegs}, []diffCounter{cSplit, cDstRegs}},
	// mem-footprint only adds the second cacheline and realigns DC ZVA:
	// addresses change, registers never do.
	{"mem-footprint", func(o *Options) { o.MemFootprint = true },
		[]diffCounter{cMemAddrs}, []diffCounter{cMemAddrs}},
	// call-stack re-deduces BLR-style branches from return to call, which
	// rewrites their sources (and, for X30-reading indirect jumps, their
	// destinations).
	{"call-stack", func(o *Options) { o.CallStack = true },
		[]diffCounter{cBranchType, cSrcRegs, cDstRegs}, []diffCounter{cBranchType, cSrcRegs}},
	// branch-regs swaps artificial branch sources (FLAGS, X56) for the
	// real CVP-1 producers; under the matching patched rule set the
	// deduced branch type is unchanged by construction (MapReg never
	// yields a reserved register id).
	{"branch-regs", func(o *Options) { o.BranchRegs = true },
		[]diffCounter{cSrcRegs}, []diffCounter{cSrcRegs}},
	// flag-reg only adds the flag register as a destination of
	// destination-less ALU/FP instructions.
	{"flag-reg", func(o *Options) { o.FlagReg = true },
		[]diffCounter{cDstRegs}, []diffCounter{cDstRegs}},
}

// matrixTrace concatenates a server trace carrying the BLR-X30 dispatch
// idiom with an integer trace, so every improvement has records to touch:
// base updates, load pairs, prefetches, DC ZVA, cross-line accesses,
// cb(n)z conditionals, indirect calls, and flag-setting compares.
func matrixTrace(t *testing.T) []*cvp.Instruction {
	t.Helper()
	var instrs []*cvp.Instruction
	for _, p := range []synth.Profile{
		synth.PublicProfile(synth.Server, 3),
		synth.PublicProfile(synth.ComputeInt, 0),
	} {
		ins, err := p.Generate(8000)
		if err != nil {
			t.Fatal(err)
		}
		instrs = append(instrs, ins...)
	}
	return instrs
}

// TestOptionsDiffMatrix sweeps all 2^6 improvement combinations and checks,
// against a No_imp baseline diff, that every combination moves only the
// DiffStats counters its enabled flags are allowed to move — i.e. no
// improvement has side effects outside its Table 1 contract — and that each
// flag's signature counters actually move when it is enabled alone.
func TestOptionsDiffMatrix(t *testing.T) {
	instrs := matrixTrace(t)
	base, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsNone())
	if err != nil {
		t.Fatal(err)
	}

	for bits := 0; bits < 1<<len(flagEffects); bits++ {
		var opts Options
		allowed := map[diffCounter]bool{}
		for i, fe := range flagEffects {
			if bits&(1<<i) != 0 {
				fe.enable(&opts)
				for _, c := range fe.may {
					allowed[c] = true
				}
			}
		}
		out, _, err := ConvertAll(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			t.Fatalf("%s: convert: %v", opts, err)
		}
		bRules := champtrace.RulesOriginal
		if opts.BranchRegs {
			bRules = champtrace.RulesPatched
		}
		d, err := Diff(base, out, champtrace.RulesOriginal, bRules)
		if err != nil {
			t.Fatalf("%s: diff: %v", opts, err)
		}
		vals := counterValues(d)

		if bits == 0 {
			if d.Identical != d.Instructions {
				t.Fatalf("No_imp vs No_imp: %d of %d records differ", d.Instructions-d.Identical, d.Instructions)
			}
		}
		for c := diffCounter(0); c < numDiffCounters; c++ {
			if !allowed[c] && vals[c] != 0 {
				t.Errorf("%s: %s = %d, but no enabled improvement may change it", opts, c, vals[c])
			}
		}

		// Single-flag combinations must also show their signature.
		if bits != 0 && bits&(bits-1) == 0 {
			fe := flagEffects[trailingBit(bits)]
			for _, c := range fe.must {
				if vals[c] == 0 {
					t.Errorf("%s: expected %s to change some records, got 0 — the matrix trace no longer exercises this improvement", fe.name, c)
				}
			}
		}
	}
}

func trailingBit(bits int) int {
	n := 0
	for bits&1 == 0 {
		bits >>= 1
		n++
	}
	return n
}

// TestOptionsDiffStatsConverterSide checks the converter's own Stats
// counters follow the same ownership rule: an improvement's counters are
// zero unless it is enabled.
func TestOptionsDiffStatsConverterSide(t *testing.T) {
	instrs := matrixTrace(t)
	for bits := 0; bits < 64; bits++ {
		opts := Options{
			MemRegs:      bits&1 != 0,
			BaseUpdate:   bits&2 != 0,
			MemFootprint: bits&4 != 0,
			CallStack:    bits&8 != 0,
			BranchRegs:   bits&16 != 0,
			FlagReg:      bits&32 != 0,
		}
		_, st, err := ConvertAll(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			t.Fatalf("%s: %v", opts, err)
		}
		if !opts.FlagReg && st.FlagDstAdded != 0 {
			t.Errorf("%s: FlagDstAdded = %d with flag-reg disabled", opts, st.FlagDstAdded)
		}
		if !opts.MemFootprint && (st.CrossLine != 0 || st.DCZVA != 0) {
			t.Errorf("%s: CrossLine/DCZVA = %d/%d with mem-footprint disabled", opts, st.CrossLine, st.DCZVA)
		}
		if !opts.BaseUpdate && !opts.MemFootprint && st.BaseUpdateLoads+st.BaseUpdateStores != 0 {
			t.Errorf("%s: base-update inference ran with both memory improvements disabled", opts)
		}
		if !opts.BranchRegs && st.CondWithSrc != 0 {
			t.Errorf("%s: CondWithSrc = %d with branch-regs disabled", opts, st.CondWithSrc)
		}
		if !opts.BaseUpdate && st.Out != st.In {
			t.Errorf("%s: Out %d != In %d without micro-op splitting", opts, st.Out, st.In)
		}
		if st.Out < st.In {
			t.Errorf("%s: Out %d < In %d — converter dropped records", opts, st.Out, st.In)
		}
	}
}
