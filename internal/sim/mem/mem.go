// Package mem models the memory hierarchy of the simulated core: a DRAM
// backing store and set-associative write-back caches with MSHR-bounded
// miss overlap and optional prefetchers.
//
// Timing follows a latency-propagation scheme: an access resolves to the
// cycle at which its data is available, recursing into the next level on a
// miss. Each line records the cycle its fill completes, so accesses that
// arrive while a fill is in flight are merged into the outstanding miss
// (hit-under-fill), which models memory-level parallelism without a global
// event queue.
package mem

// LineSize is the cacheline size in bytes, shared with the converter.
const LineSize = 64

// LineAddr returns the cacheline-aligned address of addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// AccessKind distinguishes demand reads/writes, instruction fetches, and
// prefetches (which do not count as demand misses).
type AccessKind uint8

const (
	// Read is a demand data read (load).
	Read AccessKind = iota
	// Write is a demand data write (store).
	Write
	// Fetch is a demand instruction fetch.
	Fetch
	// Prefetch is a speculative fill request.
	Prefetch
)

// IsDemand reports whether the access counts toward demand statistics.
func (k AccessKind) IsDemand() bool { return k != Prefetch }

// Level is anything that can service a cacheline request: a cache or DRAM.
// Access returns the cycle at which the requested line is available.
type Level interface {
	Access(addr uint64, cycle uint64, kind AccessKind) uint64
}

// Stats counts the events of one cache.
type Stats struct {
	Accesses, Hits, Misses   uint64
	PrefetchIssued           uint64
	PrefetchFills            uint64
	UsefulPrefetches         uint64
	MergedMisses             uint64 // demand accesses merged into an in-flight fill
	WriteAccesses, WriteMiss uint64
}

// Config parameterizes one cache level.
type Config struct {
	// Name labels the cache in statistics output ("L1I", "L2", ...).
	Name string
	// Sets and Ways define the organization; Sets must be a power of two.
	Sets, Ways int
	// Latency is the hit latency in cycles.
	Latency uint64
	// MSHRs bounds the number of concurrently outstanding fills.
	MSHRs int
	// Policy names the replacement policy: "lru" (default), "srrip", or
	// "drrip".
	Policy string
}

// SizeKB returns the capacity in kibibytes.
func (c Config) SizeKB() int { return c.Sets * c.Ways * LineSize / 1024 }

type line struct {
	tag   uint64
	valid bool
	// ready is the cycle at which the fill for this line completes.
	ready uint64
	// lru is a per-set sequence number; smaller = older.
	lru uint64
	// prefetched marks lines brought in by a prefetch and not yet
	// touched by demand.
	prefetched bool
}

// Prefetcher reacts to demand accesses of the cache it is attached to and
// issues speculative fills through the owning cache.
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// OnAccess is invoked for every demand access, after the hit/miss
	// outcome is known. ip is the program counter of the requesting
	// instruction (0 for instruction fetches). Prefetch addresses are
	// appended to buf and the extended slice returned, so the owning
	// cache can reuse one buffer across accesses.
	OnAccess(addr, ip uint64, hit bool, buf []uint64) []uint64
}

// Cache is one set-associative write-back cache level. The lines of all
// sets live in one contiguous slice (set s spans lines[s*ways : (s+1)*ways])
// so a lookup touches a single allocation with no per-set header hop.
type Cache struct {
	cfg     Config
	next    Level
	lines   []line
	ways    int
	lruTick uint64
	// outstanding holds completion cycles of in-flight fills for MSHR
	// accounting; expired entries are pruned lazily.
	outstanding []uint64
	pf          Prefetcher
	// pfBuf is the reusable buffer the prefetcher appends into.
	pfBuf   []uint64
	policy  Replacement // nil = built-in LRU
	stats   Stats
	setMask uint64
	// tagShift is the precomputed bit offset of the tag within a line
	// address (log2 of the set count).
	tagShift uint
	// warmHint remembers, per set, the way of the most recent warm-path
	// hit or fill. Warm accesses probe it before scanning the set: the
	// functional warmer touches every memory reference of the gap, so the
	// hit path runs hundreds of times per detailed instruction and the
	// MRU way wins often enough to skip most full scans. The hint is pure
	// acceleration — hit bookkeeping is identical either way — and the
	// detailed path does not consult it.
	warmHint []uint8
	// requester is the index of the core currently driving accesses. It
	// matters only on shared levels (see SetRequester) and stays 0 on
	// private caches.
	requester int
	// coreStats, when non-nil, accumulates per-requester counters in
	// parallel with stats. Enabled only on shared levels (EnablePerCore);
	// nil on private caches, so the single-core hot path pays one
	// predictable branch.
	coreStats []Stats
}

// SetRequester tags subsequent accesses with the issuing core's index, for
// per-core accounting and core-aware replacement on shared levels. The
// multi-core engine calls it before each core's pipeline pass.
func (c *Cache) SetRequester(core int) {
	c.requester = core
	if p, ok := c.policy.(interface{ SetRequester(int) }); ok {
		p.SetRequester(core)
	}
}

// EnablePerCore switches on per-requester statistics for n cores. Shared
// counters cannot be reset per core (resetting for one core would destroy
// the others' warm-up baselines), so consumers snapshot CoreStats at
// measurement start and subtract.
func (c *Cache) EnablePerCore(n int) { c.coreStats = make([]Stats, n) }

// CoreStats returns the counters attributed to core i. Zero-valued unless
// EnablePerCore was called.
func (c *Cache) CoreStats(i int) Stats {
	if c.coreStats == nil {
		return Stats{}
	}
	return c.coreStats[i]
}

// Sub returns s minus b, counter by counter — the per-core measurement
// window delta on a shared level.
func (s Stats) Sub(b Stats) Stats {
	return Stats{
		Accesses:         s.Accesses - b.Accesses,
		Hits:             s.Hits - b.Hits,
		Misses:           s.Misses - b.Misses,
		PrefetchIssued:   s.PrefetchIssued - b.PrefetchIssued,
		PrefetchFills:    s.PrefetchFills - b.PrefetchFills,
		UsefulPrefetches: s.UsefulPrefetches - b.UsefulPrefetches,
		MergedMisses:     s.MergedMisses - b.MergedMisses,
		WriteAccesses:    s.WriteAccesses - b.WriteAccesses,
		WriteMiss:        s.WriteMiss - b.WriteMiss,
	}
}

// NewCache builds a cache in front of next. cfg.Sets must be a power of two.
func NewCache(cfg Config, next Level) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("mem: cache sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("mem: cache ways must be positive")
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	pol, ok := NewReplacement(cfg.Policy, cfg.Sets, cfg.Ways)
	if !ok {
		panic("mem: unknown replacement policy " + cfg.Policy)
	}
	return &Cache{
		cfg:         cfg,
		next:        next,
		setMask:     uint64(cfg.Sets - 1),
		tagShift:    uint(trailingBits(uint64(cfg.Sets))),
		policy:      pol,
		lines:       make([]line, cfg.Sets*cfg.Ways),
		ways:        cfg.Ways,
		outstanding: make([]uint64, 0, 2*cfg.MSHRs),
		warmHint:    make([]uint8, cfg.Sets),
	}
}

// SetPrefetcher attaches p to the cache. Prefetches issued by p fill this
// cache (and, transitively, lower levels).
func (c *Cache) SetPrefetcher(p Prefetcher) { c.pf = p }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (end of warm-up).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(addr uint64) (setIdx int, tag uint64) {
	lineNo := addr / LineSize
	return int(lineNo & c.setMask), lineNo >> c.tagShift
}

func trailingBits(n uint64) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Access requests the line containing addr at the given cycle and returns
// the cycle at which data is available. ip is used only to drive the
// attached prefetcher.
func (c *Cache) Access(addr uint64, cycle uint64, kind AccessKind) uint64 {
	return c.AccessIP(addr, 0, cycle, kind)
}

// AccessIP is Access with the requesting instruction pointer, which
// IP-indexed prefetchers need.
func (c *Cache) AccessIP(addr, ip uint64, cycle uint64, kind AccessKind) uint64 {
	done, hit := c.lookup(addr, cycle, kind)
	if kind.IsDemand() && c.pf != nil {
		c.pfBuf = c.pf.OnAccess(LineAddr(addr), ip, hit, c.pfBuf[:0])
		for _, pa := range c.pfBuf {
			c.stats.PrefetchIssued++
			if c.coreStats != nil {
				c.coreStats[c.requester].PrefetchIssued++
			}
			c.lookup(pa, cycle, Prefetch)
		}
	}
	return done
}

// WarmAccess is the functional-warming counterpart of AccessIP: tags, LRU
// state, replacement policy, statistics, and (when train is set) prefetcher
// training evolve exactly as in a detailed access, but fill timing — MSHR
// occupancy, latency propagation, the DRAM bank model — is skipped, since a
// fast-forwarding simulator has no meaningful cycle to charge it to. Lines
// filled this way are immediately ready.
//
// fill controls whether trained prefetches also insert their lines. The
// full warm window preceding a detailed interval fills (matching what the
// detailed engine would have done); the long light phase trains without
// filling, because a functional fill is perfectly timed — no bandwidth,
// MSHR, or latency constraints — and letting it run for a whole gap
// idealizes the cache contents enough to visibly inflate interval IPC on
// prefetch-friendly traces.
func (c *Cache) WarmAccess(addr, ip uint64, kind AccessKind, train, fill bool) {
	hit := c.warmTouch(addr, kind, train, fill)
	if kind.IsDemand() && train && c.pf != nil {
		c.pfBuf = c.pf.OnAccess(LineAddr(addr), ip, hit, c.pfBuf[:0])
		if !fill {
			return
		}
		for _, pa := range c.pfBuf {
			c.stats.PrefetchIssued++
			c.warmTouch(pa, Prefetch, train, fill)
		}
	}
}

// warmTouch performs the timing-free lookup-and-fill of WarmAccess and
// reports whether it hit. Misses recurse into the next cache level (DRAM
// has no warm-relevant state).
func (c *Cache) warmTouch(addr uint64, kind AccessKind, train, fill bool) bool {
	setIdx, tag := c.index(addr)
	set := c.lines[setIdx*c.ways : (setIdx+1)*c.ways]
	demand := kind.IsDemand()
	if demand {
		c.stats.Accesses++
		if kind == Write {
			c.stats.WriteAccesses++
		}
	}
	c.lruTick++

	way := int(c.warmHint[setIdx])
	if way >= len(set) || !set[way].valid || set[way].tag != tag {
		way = -1
		for i := range set {
			if set[i].valid && set[i].tag == tag {
				way = i
				c.warmHint[setIdx] = uint8(i)
				break
			}
		}
	}
	if way >= 0 {
		ln := &set[way]
		ln.lru = c.lruTick
		if c.policy != nil && demand {
			c.policy.Hit(setIdx, way)
		}
		if demand {
			c.stats.Hits++
			if ln.prefetched {
				c.stats.UsefulPrefetches++
				ln.prefetched = false
			}
		}
		return true
	}

	if demand {
		c.stats.Misses++
		if kind == Write {
			c.stats.WriteMiss++
		}
	} else {
		c.stats.PrefetchFills++
	}
	nextKind := kind
	if kind == Write {
		nextKind = Read
	}
	if next, ok := c.next.(*Cache); ok {
		next.WarmAccess(addr, 0, nextKind, train, fill)
	}

	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.policy != nil {
			victim = c.policy.Victim(setIdx)
		} else {
			victim = 0
			for i := range set {
				if set[i].lru < set[victim].lru {
					victim = i
				}
			}
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.lruTick, prefetched: kind == Prefetch}
	c.warmHint[setIdx] = uint8(victim)
	if c.policy != nil {
		c.policy.Fill(setIdx, victim, kind == Prefetch)
	}
	return false
}

func (c *Cache) lookup(addr uint64, cycle uint64, kind AccessKind) (uint64, bool) {
	setIdx, tag := c.index(addr)
	set := c.lines[setIdx*c.ways : (setIdx+1)*c.ways]
	var cs *Stats
	if c.coreStats != nil {
		cs = &c.coreStats[c.requester]
	}
	demand := kind.IsDemand()
	if demand {
		c.stats.Accesses++
		if kind == Write {
			c.stats.WriteAccesses++
		}
		if cs != nil {
			cs.Accesses++
			if kind == Write {
				cs.WriteAccesses++
			}
		}
	}
	c.lruTick++

	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.lruTick
			if c.policy != nil && demand {
				c.policy.Hit(setIdx, i)
			}
			if demand {
				c.stats.Hits++
				if cs != nil {
					cs.Hits++
				}
				if ln.prefetched {
					c.stats.UsefulPrefetches++
					if cs != nil {
						cs.UsefulPrefetches++
					}
					ln.prefetched = false
				}
				if ln.ready > cycle {
					c.stats.MergedMisses++
					if cs != nil {
						cs.MergedMisses++
					}
				}
			}
			return max64(cycle, ln.ready) + c.cfg.Latency, true
		}
	}

	// Miss.
	if demand {
		c.stats.Misses++
		if kind == Write {
			c.stats.WriteMiss++
		}
		if cs != nil {
			cs.Misses++
			if kind == Write {
				cs.WriteMiss++
			}
		}
	} else {
		c.stats.PrefetchFills++
		if cs != nil {
			cs.PrefetchFills++
		}
	}

	// MSHR occupancy: if all miss registers are busy, the request waits
	// for the earliest outstanding fill to complete. Prefetches that
	// find the MSHRs full are dropped.
	start := cycle + c.cfg.Latency // tag lookup before the miss goes out
	live := c.outstanding[:0]
	earliest := uint64(0)
	for _, t := range c.outstanding {
		if t > cycle {
			live = append(live, t)
			if earliest == 0 || t < earliest {
				earliest = t
			}
		}
	}
	c.outstanding = live
	if len(c.outstanding) >= c.cfg.MSHRs {
		if kind == Prefetch {
			return 0, false
		}
		start = max64(start, earliest)
	}

	nextKind := kind
	if kind == Write {
		// Write misses fetch the line for ownership; downstream they
		// look like reads.
		nextKind = Read
	}
	ready := c.next.Access(addr, start, nextKind)
	c.outstanding = append(c.outstanding, ready)

	// Victim selection: invalid lines first, then the configured policy
	// (or LRU).
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.policy != nil {
			victim = c.policy.Victim(setIdx)
		} else {
			victim = 0
			for i := range set {
				if set[i].lru < set[victim].lru {
					victim = i
				}
			}
		}
	}
	set[victim] = line{tag: tag, valid: true, ready: ready, lru: c.lruTick, prefetched: kind == Prefetch}
	if c.policy != nil {
		c.policy.Fill(setIdx, victim, kind == Prefetch)
	}
	return ready, false
}

// Contains reports whether the line holding addr is present (regardless of
// fill completion) — used by tests and by front-end probe logic.
func (c *Cache) Contains(addr uint64) bool {
	setIdx, tag := c.index(addr)
	for _, ln := range c.lines[setIdx*c.ways : (setIdx+1)*c.ways] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// DRAM is the fixed-latency backing store with a simple bank model: each of
// Banks banks serializes requests spaced less than ServiceTime apart, which
// approximates bandwidth and bank-conflict effects.
type DRAM struct {
	// Latency is the row access latency in cycles.
	Latency uint64
	// ServiceTime is the per-request bank occupancy in cycles.
	ServiceTime uint64
	// Banks is the number of independent banks (power of two).
	Banks int

	nextFree []uint64
	accesses uint64
}

// NewDRAM returns a DRAM model with the given latency, service time and
// bank count.
func NewDRAM(latency, serviceTime uint64, banks int) *DRAM {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic("mem: DRAM banks must be a positive power of two")
	}
	return &DRAM{Latency: latency, ServiceTime: serviceTime, Banks: banks, nextFree: make([]uint64, banks)}
}

// Access implements Level.
func (d *DRAM) Access(addr uint64, cycle uint64, kind AccessKind) uint64 {
	d.accesses++
	bank := int((addr / LineSize) % uint64(d.Banks))
	start := max64(cycle, d.nextFree[bank])
	d.nextFree[bank] = start + d.ServiceTime
	return start + d.Latency
}

// Accesses returns the total number of requests serviced.
func (d *DRAM) Accesses() uint64 { return d.accesses }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Hierarchy bundles the four cache levels of the simulated core. In a
// multi-core system each core holds its own Hierarchy view: private
// L1I/L1D/L2 plus pointers to the shared LLC and DRAM (Shared set).
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	DRAM              *DRAM
	// Shared marks this view as one core's slice of a SharedHierarchy:
	// the LLC (and DRAM) are owned jointly, so per-core operations must
	// not mutate them (see ResetStats).
	Shared bool
}

// HierarchyConfig sizes the four levels.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC Config
	DRAMLatency       uint64
	DRAMService       uint64
	DRAMBanks         int
}

// DefaultHierarchyConfig mirrors ChampSim's single-core defaults:
// 32 KB/8-way L1I, 48 KB/12-way L1D, 512 KB/8-way L2, 2 MB/16-way LLC.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{Name: "L1I", Sets: 64, Ways: 8, Latency: 4, MSHRs: 8},
		L1D:         Config{Name: "L1D", Sets: 64, Ways: 12, Latency: 5, MSHRs: 16},
		L2:          Config{Name: "L2", Sets: 1024, Ways: 8, Latency: 10, MSHRs: 32},
		LLC:         Config{Name: "LLC", Sets: 2048, Ways: 16, Latency: 20, MSHRs: 64},
		DRAMLatency: 200,
		DRAMService: 16,
		DRAMBanks:   8,
	}
}

// NewHierarchy builds the L1I/L1D → L2 → LLC → DRAM hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := NewDRAM(cfg.DRAMLatency, cfg.DRAMService, cfg.DRAMBanks)
	llc := NewCache(cfg.LLC, dram)
	l2 := NewCache(cfg.L2, llc)
	return &Hierarchy{
		L1I:  NewCache(cfg.L1I, l2),
		L1D:  NewCache(cfg.L1D, l2),
		L2:   l2,
		LLC:  llc,
		DRAM: dram,
	}
}

// ResetStats clears the counters of every level (end of warm-up). On a
// shared view the LLC is skipped: its global counters belong to all cores,
// and per-core windows are measured by CoreStats deltas instead.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	if !h.Shared {
		h.LLC.ResetStats()
	}
}
