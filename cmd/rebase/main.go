// Command rebase regenerates the paper's tables and figures, mirroring the
// artifact's results_fig*.sh / results_tab*.sh scripts:
//
//	rebase -exp table1
//	rebase -exp fig1 -instructions 150000
//	rebase -exp all -step 3        # every 3rd public trace, for quick runs
//
// Figures 1–5 share one sweep of the CVP-1 public suite (every trace
// converted under every improvement set, simulated on the develop model);
// Tables 2–3 run the 50 IPC-1 traces on the develop and IPC-1 models
// respectively.
//
// Results are served from a content-addressed cache when possible: the
// whole pipeline is deterministic, so a (trace, variant, config) cell that
// was simulated before — by this run, an earlier run, or a concurrent one —
// is loaded from ~/.cache/tracerebase instead of recomputed, making warm
// re-runs near-instant with byte-identical output. -cache-dir relocates
// the store (as does $TRACEREBASE_CACHE_DIR), -no-cache disables it
// entirely, and a cache summary line (hits/misses/bytes) is printed after
// each run. Use `traceinfo -cachekey` to inspect a cell's key derivation.
//
// Alongside the caches, every sweep records its result cells into a
// columnar experiment store (<cache dir>/exp, flags -exp-store /
// -no-exp-store / -exp-store-dir) and reads its rendered results back out
// of it. The store is queryable without re-running anything:
//
//	rebase query 'category=srv variant=all,none metric=ipc group-by=rob stat=p50,p99'
//
// prunes blocks on footer statistics and materializes only the referenced
// columns; see `rebase query -h` for the query language.
//
// For performance work, -cpuprofile and -memprofile write pprof profiles
// covering the whole run, and -bench-json records the wall-clock,
// configuration, and cache activity of the run as a small JSON document
// (see BENCH_1.json, BENCH_4.json).
//
// rebase -cores N -coschedule <spec>[,<spec>...] simulates co-scheduled
// workload mixes on N lockstep cores over a shared LLC instead of the
// single-core experiments, reporting per-core and aggregate IPC for every
// converter variant. -llc-policy selects the shared replacement policy
// (e.g. shared-srrip) and -mem-bandwidth adds an LLC<->DRAM port occupancy:
//
//	rebase -cores 2 -coschedule srvcrypto
//	rebase -cores 4 -coschedule thrash,rack -llc-policy shared-srrip -mem-bandwidth 4
//
// rebase serve runs the same engine as a long-lived daemon over a tiered
// result cache (memory LRU -> disk -> optional remote peer daemon via
// -remote), and rebase submit is its streaming client; submitted jobs
// produce output byte-identical to the batch CLI, with repeat queries
// answered from the memory tier:
//
//	rebase serve -addr 127.0.0.1:8344 -workers 2
//	rebase submit -exp fig1 -step 3
//	rebase submit -status
//
// rebase -selftest runs the conformance suite instead of an experiment:
// golden-corpus verification, the differential battery over the synthetic
// suite, and the metamorphic simulator checks. Any positional arguments are
// validated as user-supplied trace files (CVP-1 or ChampSim, optionally
// gzipped):
//
//	rebase -selftest
//	rebase -selftest -step 10          # every 10th trace, for quick runs
//	rebase -selftest my_trace.cvp.gz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tracerebase/internal/conformance"
	"tracerebase/internal/experiments"
	"tracerebase/internal/expstore"
	"tracerebase/internal/report"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/synth"
)

func main() {
	// Subcommands precede the flag-driven batch mode: `rebase serve` runs
	// the sweep daemon, `rebase submit` is its client. Everything else is
	// the classic batch CLI.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "query":
			os.Exit(runQuery(os.Args[2:]))
		}
	}
	os.Exit(run())
}

func run() (code int) {
	var (
		exp        = flag.String("exp", "all", "experiment: table1, fig1..fig5, table2, table3, ablation, char, or all")
		instrs     = flag.Int("instructions", 150000, "instructions per trace")
		warmup     = flag.Uint64("warmup", 50000, "warm-up instructions per trace")
		step       = flag.Int("step", 1, "use every step-th trace of each suite (1 = all)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		jsonOut    = flag.Bool("json", false, "emit results as JSON instead of text")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchJSON  = flag.String("bench-json", "", "write run timing and configuration as JSON to this file")
		selftest   = flag.Bool("selftest", false, "run the conformance suite (positional args: trace files to validate)")
		noSkip     = flag.Bool("no-skip", false, "disable event-horizon cycle skipping (results are identical; for verification and benchmarking)")
		useCache   = flag.Bool("cache", true, "serve repeated (trace, variant, config) simulations from the result cache")
		noCache    = flag.Bool("no-cache", false, "disable the result cache (overrides -cache)")
		cacheDir   = flag.String("cache-dir", "", "result cache directory (default $TRACEREBASE_CACHE_DIR or the user cache dir, e.g. ~/.cache/tracerebase)")

		traceStore    = flag.Bool("trace-store", true, "serve converted traces from the compiled-trace slab store (zero-copy mmap, shared across runs and processes)")
		noTraceStore  = flag.Bool("no-trace-store", false, "disable the compiled-trace store (overrides -trace-store)")
		traceStoreDir = flag.String("trace-store-dir", "", "compiled-trace store directory (default <cache dir>/slabs)")

		expStore    = flag.Bool("exp-store", true, "record sweep result cells into the columnar experiment store (queryable with `rebase query`)")
		noExpStore  = flag.Bool("no-exp-store", false, "disable the experiment store (overrides -exp-store)")
		expStoreDir = flag.String("exp-store-dir", "", "experiment store directory (default <cache dir>/exp)")
		memLimit    = flag.String("mem-limit", "auto", "soft memory limit: auto (parallelism-scaled, bounded by available RAM), off, or a size like 2GiB; ignored when $GOMEMLIMIT is set")

		cores      = flag.Int("cores", 1, "simulate N lockstep cores over a shared LLC (requires -coschedule)")
		coschedule = flag.String("coschedule", "", "comma-separated co-schedule scenarios to run on -cores cores: "+strings.Join(synth.CoScheduleSpecs(), ", "))
		llcPolicy  = flag.String("llc-policy", "", "shared-LLC replacement policy for -coschedule runs (e.g. shared-srrip; default: the model's LLC policy)")
		memBW      = flag.Uint64("mem-bandwidth", 0, "LLC<->DRAM port occupancy in cycles per access for -coschedule runs (0 = unlimited)")

		sample       = flag.Bool("sample", false, "SMARTS-style interval sampling: short detailed intervals separated by functionally-warmed fast-forward gaps (several times faster; IPC carries a small sampling error, reported with a 95% CI)")
		samplePeriod = flag.Uint64("sample-period", 12500, "sampled mode: instructions per sampling period (one detailed interval each)")
		sampleDetail = flag.Uint64("sample-detail", 2500, "sampled mode: detailed instructions per interval (first half is unmeasured pipeline ramp)")
		sampleWarm   = flag.Uint64("sample-warm", 2500, "sampled mode: fully-warmed instructions ahead of each interval (0 = warm whole gaps)")
	)
	flag.Parse()

	// Reject nonsensical run shapes before any work starts: a warm-up
	// consuming the whole run would leave every measurement region empty,
	// and negative counts have no meaning.
	if *instrs <= 0 {
		return fail("-instructions must be positive (got %d)", *instrs)
	}
	if !*selftest && *warmup >= uint64(*instrs) {
		return fail("-warmup %d >= -instructions %d leaves an empty measurement region", *warmup, *instrs)
	}
	if *parallel < 0 {
		return fail("-parallel must be >= 0 (got %d)", *parallel)
	}
	if *step < 1 {
		return fail("-step must be >= 1 (got %d)", *step)
	}
	if *sample {
		if *samplePeriod == 0 {
			return fail("-sample-period must be positive")
		}
		if *sampleDetail == 0 || *sampleDetail >= *samplePeriod {
			return fail("-sample-detail %d must be positive and below -sample-period %d", *sampleDetail, *samplePeriod)
		}
	}
	if *cores < 1 {
		return fail("-cores must be >= 1 (got %d)", *cores)
	}
	if *coschedule != "" {
		if *cores < 2 {
			return fail("-coschedule needs -cores >= 2 (got %d): co-scheduled scenarios only exist with neighbors", *cores)
		}
		if *sample {
			return fail("-sample is single-core only; multi-core co-schedules run in exact mode")
		}
	} else {
		if *cores > 1 {
			return fail("-cores %d without -coschedule: single-core experiments ignore extra cores", *cores)
		}
		if *llcPolicy != "" || *memBW > 0 {
			return fail("-llc-policy/-mem-bandwidth only apply to -coschedule runs")
		}
	}

	memPar := *parallel
	if memPar <= 0 {
		memPar = runtime.NumCPU()
	}
	if err := applyMemLimit(*memLimit, memPar); err != nil {
		return fail("mem-limit: %v", err)
	}

	if *selftest {
		log := io.Writer(os.Stderr)
		if *quiet {
			log = nil
		}
		err := conformance.SelfTest(conformance.SelfTestConfig{
			Suite:       report.Subsample(synth.PublicSuite(), *step),
			Parallelism: *parallel,
			TraceFiles:  flag.Args(),
			Log:         log,
		})
		if err != nil {
			return fail("selftest: %v", err)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Written at exit so the profile covers the whole run; a failure
		// here must still flip the exit code.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				code = fail("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				code = fail("memprofile: %v", err)
			}
		}()
	}

	cfg := experiments.SweepConfig{
		Instructions: *instrs,
		Warmup:       *warmup,
		Parallelism:  *parallel,
		NoSkip:       *noSkip,
	}
	if *sample {
		cfg.SamplePeriod = *samplePeriod
		cfg.SampleDetail = *sampleDetail
		cfg.SampleWarm = *sampleWarm
	}
	if *traceStore && !*noTraceStore {
		// The slab store is independent of the result cache: -no-cache runs
		// (which recompute every simulation) still skip generation and
		// conversion when warm slabs exist.
		dir := *traceStoreDir
		if dir == "" && *cacheDir != "" {
			dir = *cacheDir + "/slabs"
		}
		store, err := experiments.OpenSlabStore(dir, 0, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rebase: "+format+"\n", args...)
		})
		if err != nil {
			// A broken store must never block the run; fall back to
			// streaming conversion.
			fmt.Fprintf(os.Stderr, "rebase: trace store disabled: %v\n", err)
		} else {
			cfg.Slabs = store
			defer store.Close()
		}
	}
	var expMisses int
	if *expStore && !*noExpStore && *coschedule == "" {
		// The experiment store is the sweep's queryable record: every
		// computed (or cache-hit) single-core cell is appended, and the
		// results the run renders are read back out of the store.
		dir := *expStoreDir
		if dir == "" && *cacheDir != "" {
			dir = *cacheDir + "/exp"
		}
		if dir == "" {
			var err error
			dir, err = experiments.DefaultExpStoreDir()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rebase: experiment store disabled: %v\n", err)
			}
		}
		if dir != "" {
			store, err := expstore.Open(expstore.Config{Dir: dir, Warn: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "rebase: "+format+"\n", args...)
			}})
			if err != nil {
				// A broken store must never block the run; results stay
				// in-flight and queries simply see no new cells.
				fmt.Fprintf(os.Stderr, "rebase: experiment store disabled: %v\n", err)
			} else {
				cfg.Exp = store
				cfg.ExpMisses = func(n int) { expMisses += n }
				defer store.Close()
			}
		}
	}
	if *coschedule != "" {
		cfg.Cores = *cores
		cfg.LLCPolicy = *llcPolicy
		cfg.MemBandwidth = *memBW
		if *useCache && !*noCache {
			mc, err := experiments.OpenMultiCache(*cacheDir, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rebase: cache disabled: %v\n", err)
			} else {
				cfg.MultiCache = mc
			}
		}
		return runCoSchedules(strings.Split(*coschedule, ","), cfg, *jsonOut, *quiet, *benchJSON, *exp, *step)
	}
	if *useCache && !*noCache {
		cache, err := experiments.OpenResultCache(*cacheDir, 0)
		if err != nil {
			// A broken cache must never block the run; fall back to the
			// uncached engine.
			fmt.Fprintf(os.Stderr, "rebase: cache disabled: %v\n", err)
		} else {
			cfg.Cache = cache
		}
		if *sample {
			ckpts, err := experiments.OpenCheckpointCache(*cacheDir, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rebase: checkpoint cache disabled: %v\n", err)
			} else {
				cfg.Checkpoints = ckpts
			}
		}
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%3d/%3d traces", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// The experiment composition itself lives in internal/report so the
	// serve daemon renders byte-identical output for the same request.
	out := report.Output{Text: os.Stdout, JSON: *jsonOut}
	if !*quiet {
		out.Log = os.Stderr
	}
	start := time.Now()
	tel, err := report.Run(cfg, report.Spec{Exp: *exp, Step: *step}, out)
	if err != nil {
		return fail("%v", err)
	}
	skipCats, sampleCats := tel.Skip, tel.Sample
	elapsed := time.Since(start)
	if !*quiet {
		if len(skipCats) > 0 {
			parts := make([]string, 0, len(skipCats))
			for _, s := range skipCats {
				parts = append(parts, fmt.Sprintf("%s %.1f%%", s.Category, 100*s.Fraction))
			}
			fmt.Fprintf(os.Stderr, "skip: cycles jumped per category: %s\n", strings.Join(parts, ", "))
		}
		if len(sampleCats) > 0 {
			parts := make([]string, 0, len(sampleCats))
			for _, s := range sampleCats {
				parts = append(parts, fmt.Sprintf("%s %.3f ±%.3f", s.Category, s.MeanIPC, s.MeanCI95))
			}
			fmt.Fprintf(os.Stderr, "sample: interval IPC ±95%% CI per category: %s\n", strings.Join(parts, ", "))
		}
		if cfg.Cache != nil {
			s := cfg.Cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits (%d mem, %d disk), %d misses, %d corrupt, %d evicted, %.1f MB read, %.1f MB written (%s)\n",
				s.Hits, s.MemHits, s.DiskHits, s.Misses, s.Corrupt, s.Evictions,
				float64(s.BytesRead)/1e6, float64(s.BytesWritten)/1e6, cfg.Cache.Dir())
		}
		if cfg.Checkpoints != nil {
			s := cfg.Checkpoints.Stats()
			fmt.Fprintf(os.Stderr, "checkpoints: %d hits (%d mem, %d disk), %d misses, %.1f MB read, %.1f MB written\n",
				s.Hits, s.MemHits, s.DiskHits, s.Misses,
				float64(s.BytesRead)/1e6, float64(s.BytesWritten)/1e6)
		}
		printSlabStats(cfg.Slabs)
		if cfg.Exp != nil {
			// Flush pending cells so the trailer reports what this run
			// actually persisted (Close would flush them anyway).
			if err := cfg.Exp.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rebase: experiment store flush: %v\n", err)
			}
			s := cfg.Exp.Stats()
			fmt.Fprintf(os.Stderr, "exp-store: %d cells appended (%d dup), %d read-back misses, %d blocks written, %d compactions, %d corrupt, %.1f MB written (%s)\n",
				s.Appends, s.DupSkipped, expMisses, s.BlocksWritten, s.Compactions, s.Corrupt,
				float64(s.BytesWritten)/1e6, cfg.Exp.Dir())
		}
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", elapsed.Seconds())
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *exp, *step, cfg, elapsed, skipCats, sampleCats, nil); err != nil {
			return fail("bench-json: %v", err)
		}
	}
	return 0
}

// benchRecord is the schema of -bench-json output: enough context to make
// a recorded wall-clock comparable across machines and configurations.
type benchRecord struct {
	Experiment   string      `json:"experiment"`
	Step         int         `json:"step"`
	Instructions int         `json:"instructions"`
	Warmup       uint64      `json:"warmup"`
	Parallelism  int         `json:"parallelism"`
	NumCPU       int         `json:"num_cpu"`
	GOOS         string      `json:"goos"`
	GOARCH       string      `json:"goarch"`
	GoVersion    string      `json:"go_version"`
	NoSkip       bool        `json:"no_skip"`
	WallSeconds  float64     `json:"wall_seconds"`
	Timestamp    string      `json:"timestamp"`
	Cache        *benchCache `json:"cache,omitempty"`
	// CacheTiers breaks the result-cache backend down per tier (memory,
	// disk, remote) with hit/miss/latency/byte counters.
	CacheTiers []resultcache.BackendStats `json:"cache_tiers,omitempty"`
	// CheckpointCache records warmed-checkpoint reuse in sampled runs.
	CheckpointCache *benchCache `json:"checkpoint_cache,omitempty"`
	// Skip carries per-category cycle-skipping fractions when the run
	// included the figure sweep.
	Skip []report.SkipStat `json:"skip,omitempty"`
	// Sample carries the sampling configuration and per-category interval
	// statistics when the run used -sample.
	Sample *benchSampleBlock `json:"sample,omitempty"`
	// Multi carries per-core cycle-skipping fractions for -coschedule runs.
	Multi *benchMultiBlock `json:"multi,omitempty"`
	// TraceStore records compiled-trace slab store activity: a warm store
	// shows disk hits and zero converts.
	TraceStore *benchTraceStore `json:"trace_store,omitempty"`
	// ExpStore records columnar experiment-store activity: a warm store
	// shows every offered cell deduplicated and nothing written.
	ExpStore *benchExpStore `json:"exp_store,omitempty"`
}

// benchExpStore records experiment-store activity so a BENCH file
// distinguishes first-run appends from warm dedup re-runs.
type benchExpStore struct {
	Appends       uint64 `json:"appends"`
	DupSkipped    uint64 `json:"dup_skipped"`
	BlocksWritten uint64 `json:"blocks_written"`
	CellsWritten  uint64 `json:"cells_written"`
	Compactions   uint64 `json:"compactions"`
	Corrupt       uint64 `json:"corrupt"`
	Foreign       uint64 `json:"foreign"`
	BytesWritten  uint64 `json:"bytes_written"`
}

// benchTraceStore records slab-store activity so a BENCH file distinguishes
// slab-cold runs (all converts) from slab-warm runs (all mapped hits).
type benchTraceStore struct {
	Hits         uint64 `json:"hits"`
	MemHits      uint64 `json:"mem_hits"`
	DiskHits     uint64 `json:"disk_hits"`
	Misses       uint64 `json:"misses"`
	Converts     uint64 `json:"converts"`
	Prefetches   uint64 `json:"prefetches"`
	Corrupt      uint64 `json:"corrupt"`
	Evictions    uint64 `json:"evictions"`
	WriteErrors  uint64 `json:"write_errors"`
	BytesMapped  uint64 `json:"bytes_mapped"`
	BytesWritten uint64 `json:"bytes_written"`
}

// printSlabStats prints the compiled-trace store trailer line (no-op when
// the store is disabled).
func printSlabStats(store *experiments.SlabStore) {
	if store == nil {
		return
	}
	s := store.Stats()
	fmt.Fprintf(os.Stderr, "slabs: %d hits (%d mem, %d disk), %d misses, %d converted, %d prefetched, %d corrupt, %.1f MB mapped, %.1f MB written (%s)\n",
		s.Hits, s.MemHits, s.DiskHits, s.Misses, s.Converts, s.Prefetches, s.Corrupt,
		float64(s.BytesMapped)/1e6, float64(s.BytesWritten)/1e6, store.Dir())
}

// benchSampleBlock groups the sampling parameters with the per-category
// interval statistics of the figure sweep.
type benchSampleBlock struct {
	Period     uint64              `json:"period"`
	Detail     uint64              `json:"detail"`
	Warm       uint64              `json:"warm"`
	Categories []report.SampleStat `json:"categories,omitempty"`
}

// benchCache records result-cache activity so a BENCH file distinguishes
// cold runs (all misses) from warm runs (all hits).
type benchCache struct {
	Hits         uint64 `json:"hits"`
	MemHits      uint64 `json:"mem_hits"`
	DiskHits     uint64 `json:"disk_hits"`
	Misses       uint64 `json:"misses"`
	Corrupt      uint64 `json:"corrupt"`
	Evictions    uint64 `json:"evictions"`
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
}

func writeBenchJSON(path, exp string, step int, cfg experiments.SweepConfig, elapsed time.Duration, skipCats []report.SkipStat, sampleCats []report.SampleStat, multi *benchMultiBlock) error {
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	rec := benchRecord{
		Experiment:   exp,
		Step:         step,
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Parallelism:  parallelism,
		NumCPU:       runtime.NumCPU(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GoVersion:    runtime.Version(),
		NoSkip:       cfg.NoSkip,
		WallSeconds:  elapsed.Seconds(),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Skip:         skipCats,
		Multi:        multi,
	}
	if cfg.MultiCache != nil {
		s := cfg.MultiCache.Stats()
		rec.Cache = &benchCache{
			Hits: s.Hits, MemHits: s.MemHits, DiskHits: s.DiskHits,
			Misses: s.Misses, Corrupt: s.Corrupt, Evictions: s.Evictions,
			BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
		}
	}
	if cfg.Cache != nil {
		s := cfg.Cache.Stats()
		rec.Cache = &benchCache{
			Hits: s.Hits, MemHits: s.MemHits, DiskHits: s.DiskHits,
			Misses: s.Misses, Corrupt: s.Corrupt, Evictions: s.Evictions,
			BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
		}
		rec.CacheTiers = cfg.Cache.TierStats()
	}
	if cfg.Checkpoints != nil {
		s := cfg.Checkpoints.Stats()
		rec.CheckpointCache = &benchCache{
			Hits: s.Hits, MemHits: s.MemHits, DiskHits: s.DiskHits,
			Misses: s.Misses, Corrupt: s.Corrupt, Evictions: s.Evictions,
			BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
		}
	}
	if cfg.Slabs != nil {
		s := cfg.Slabs.Stats()
		rec.TraceStore = &benchTraceStore{
			Hits: s.Hits, MemHits: s.MemHits, DiskHits: s.DiskHits,
			Misses: s.Misses, Converts: s.Converts, Prefetches: s.Prefetches,
			Corrupt: s.Corrupt, Evictions: s.Evictions, WriteErrors: s.WriteErrors,
			BytesMapped: s.BytesMapped, BytesWritten: s.BytesWritten,
		}
	}
	if cfg.Exp != nil {
		s := cfg.Exp.Stats()
		rec.ExpStore = &benchExpStore{
			Appends: s.Appends, DupSkipped: s.DupSkipped,
			BlocksWritten: s.BlocksWritten, CellsWritten: s.CellsWritten,
			Compactions: s.Compactions, Corrupt: s.Corrupt, Foreign: s.Foreign,
			BytesWritten: s.BytesWritten,
		}
	}
	if cfg.SamplePeriod > 0 {
		rec.Sample = &benchSampleBlock{
			Period:     cfg.SamplePeriod,
			Detail:     cfg.SampleDetail,
			Warm:       cfg.SampleWarm,
			Categories: sampleCats,
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rebase: "+format+"\n", args...)
	return 1
}
