// Command gen regenerates the golden conformance corpus. It is invoked by
// `go generate ./internal/conformance` and writes the binary traces and
// manifest.json that VerifyGolden checks against.
package main

import (
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/conformance"
)

func main() {
	dir := flag.String("dir", "testdata/golden", "output directory for the corpus")
	flag.Parse()
	if err := conformance.WriteGolden(*dir); err != nil {
		fmt.Fprintf(os.Stderr, "gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gen: wrote golden corpus to %s\n", *dir)
}
