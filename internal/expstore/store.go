package expstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Config configures a Store. The zero value plus Dir is usable.
type Config struct {
	// Dir is the store directory; block files live directly in it.
	Dir string
	// BlockCells is the append-buffer flush threshold: a block is written
	// once this many cells accumulate (or on Flush/Close). Blocks smaller
	// than this are compaction candidates. Default 256.
	BlockCells int
	// CompactTrigger starts background compaction once this many
	// undersized blocks exist. Default 8.
	CompactTrigger int
	// MaxBlockCells bounds a compacted block. Default 16×BlockCells.
	MaxBlockCells int
	// Warn receives diagnostics for corrupt blocks and write failures;
	// nil discards them.
	Warn func(format string, args ...any)
}

// Stats are the store's observability counters, all cumulative since Open.
type Stats struct {
	// Appends is cells offered; DupSkipped of those were already present
	// (on disk or pending) under the same content key and were dropped.
	Appends    uint64
	DupSkipped uint64
	// BlocksWritten / CellsWritten / BytesWritten cover both fresh flushes
	// and compaction outputs.
	BlocksWritten uint64
	CellsWritten  uint64
	BytesWritten  uint64
	// Compactions counts merge passes; BlocksCompacted the inputs retired.
	Compactions     uint64
	BlocksCompacted uint64
	// Corrupt blocks were removed (their cells return on the next sweep);
	// Foreign blocks (other format or schema) are skipped but kept.
	Corrupt uint64
	Foreign uint64
	// WriteErrors counts failed block writes. Appends degrade gracefully:
	// the sweep result is still returned, the store just misses the cell.
	WriteErrors uint64
}

// blockRef is one on-disk block. Mappings are created lazily under
// single-flight and stay resident until Close; compaction retires refs but
// never unmaps them mid-life, so query snapshots remain valid.
type blockRef struct {
	path    string
	seq     int
	gen     int
	size    int64
	foreign bool

	mapOnce sync.Once
	mapErr  error
	data    []byte
	h       blockHeader
	bm      blockMeta
	metas   []colMeta
}

// srcRange is the sequence range a block's cells originate from: the
// block's own sequence for fresh flushes, the recorded source range for
// compaction outputs. Dup-suspicion analysis works on these ranges.
func (ref *blockRef) srcRange() (lo, hi uint64) {
	if ref.bm.hasSrc {
		return ref.bm.srcMin, ref.bm.srcMax
	}
	return uint64(ref.seq), uint64(ref.seq)
}

// Store is an append-only columnar store of experiment cells backed by
// block files in one directory.
type Store struct {
	cfg Config

	mu      sync.Mutex
	blocks  []*blockRef
	retired []*blockRef // compacted away; unmapped at Close
	nextSeq int
	// pending buffers cells per partition — the (category, config) pair —
	// so every flushed block is partition-pure and category/config/trace
	// filters prune it from its footer dictionaries alone.
	pending  map[string][]Cell
	nPending int
	seen     map[Key]struct{} // nil until first Append builds the index
	// runID and baseSeq stamp every block this store writes: the writer
	// lineage queries use to prove scanned blocks duplicate-free (see
	// blockMeta).
	runID   uint64
	baseSeq uint64
	stats   Stats
	closed  bool

	compacting bool
	compactCv  *sync.Cond
}

func blockName(seq, gen int) string {
	return fmt.Sprintf("b%08d-g%04d.expb", seq, gen)
}

func parseBlockName(name string) (seq, gen int, ok bool) {
	var tail string
	if n, err := fmt.Sscanf(name, "b%08d-g%04d%s", &seq, &gen, &tail); err != nil || n != 3 || tail != ".expb" {
		return 0, 0, false
	}
	return seq, gen, true
}

// Open scans dir (created if missing) for block files, removing temp-file
// leftovers and corrupt headers, and returns the store ready to append and
// query.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("expstore: empty directory")
	}
	if cfg.BlockCells <= 0 {
		cfg.BlockCells = 256
	}
	if cfg.CompactTrigger <= 0 {
		cfg.CompactTrigger = 8
	}
	if cfg.MaxBlockCells <= 0 {
		cfg.MaxBlockCells = 16 * cfg.BlockCells
	}
	if cfg.Warn == nil {
		cfg.Warn = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("expstore: %w", err)
	}
	s := &Store{cfg: cfg}
	s.compactCv = sync.NewCond(&s.mu)
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("expstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(cfg.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".expb") {
			continue
		}
		path := filepath.Join(cfg.Dir, name)
		seq, gen, ok := parseBlockName(name)
		if !ok {
			// Not ours to judge; leave it alone but don't serve it.
			s.cfg.Warn("expstore: ignoring unrecognized file %s", path)
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		ref := &blockRef{path: path, seq: seq, gen: gen, size: info.Size()}
		switch s.classify(ref) {
		case blockOK:
			s.blocks = append(s.blocks, ref)
		case blockForeign:
			ref.foreign = true
			s.stats.Foreign++
			s.blocks = append(s.blocks, ref)
		case blockCorrupt:
			s.dropCorrupt(ref, fmt.Errorf("header validation failed"))
		}
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	sort.Slice(s.blocks, func(i, j int) bool {
		if s.blocks[i].seq != s.blocks[j].seq {
			return s.blocks[i].seq < s.blocks[j].seq
		}
		return s.blocks[i].gen < s.blocks[j].gen
	})
	// Every block present now is loaded into the seen-set before the first
	// append, so this run's blocks are dup-free against anything below
	// baseSeq; a zero run ID would read as "unknown writer" to queries.
	s.baseSeq = uint64(s.nextSeq)
	for s.runID == 0 {
		s.runID = rand.Uint64()
	}
	s.pending = make(map[string][]Cell)
	return s, nil
}

// classify reads just the header page to sort a scanned file into the
// OK/Corrupt/Foreign trichotomy without mapping the block.
func (s *Store) classify(ref *blockRef) blockVerdict {
	f, err := os.Open(ref.path)
	if err != nil {
		return blockCorrupt
	}
	defer f.Close()
	buf := make([]byte, blockHeaderSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return blockCorrupt
	}
	h, v := parseBlockHeader(buf, ref.size)
	if v == blockOK {
		ref.h = h
	}
	return v
}

// dropCorrupt removes a damaged block file: its cells were lost, but they
// reconvert — the next sweep recomputes and re-appends them.
func (s *Store) dropCorrupt(ref *blockRef, err error) {
	s.stats.Corrupt++
	s.cfg.Warn("expstore: removing corrupt block %s: %v", ref.path, err)
	os.Remove(ref.path)
}

// acquire maps a block (single-flight via sync.Once) and validates its
// footer and column directory. A nil return with nil error means the block
// turned out corrupt and was dropped from the store.
func (s *Store) acquire(ref *blockRef) (*blockRef, error) {
	ref.mapOnce.Do(func() {
		f, err := os.Open(ref.path)
		if err != nil {
			ref.mapErr = err
			return
		}
		defer f.Close()
		data, err := mapFile(f, ref.size)
		if err != nil {
			ref.mapErr = err
			return
		}
		h, bm, metas, v, err := openBlock(data)
		if err != nil {
			unmapFile(data)
			if v == blockCorrupt {
				ref.mapErr = fmt.Errorf("%w (removed)", err)
				s.mu.Lock()
				s.dropCorrupt(ref, err)
				s.removeRefLocked(ref)
				s.mu.Unlock()
			} else {
				ref.mapErr = err
			}
			return
		}
		ref.data, ref.h, ref.bm, ref.metas = data, h, bm, metas
	})
	if ref.mapErr != nil {
		return nil, ref.mapErr
	}
	return ref, nil
}

// removeRefLocked drops ref from the active block list (mu held).
func (s *Store) removeRefLocked(ref *blockRef) {
	for i, b := range s.blocks {
		if b == ref {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			return
		}
	}
}

// snapshot returns the current serveable blocks in (seq, gen) order.
// Mappings stay valid for the life of the store, so the snapshot can be
// read without further locking.
func (s *Store) snapshot() []*blockRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*blockRef, 0, len(s.blocks))
	for _, b := range s.blocks {
		if !b.foreign {
			out = append(out, b)
		}
	}
	return out
}

// buildSeenLocked loads the content keys of every serveable block so
// appends dedup against cells already on disk — a warm re-run appends
// nothing and the store does not grow. mu is held; mapping happens with it
// released.
func (s *Store) buildSeenLocked() {
	if s.seen != nil {
		return
	}
	s.mu.Unlock()
	seen := make(map[Key]struct{})
	for _, ref := range s.snapshot() {
		r, err := s.acquire(ref)
		if err != nil {
			continue
		}
		ki := colIndex["key"]
		keys, err := materializeKeys(r.data, &r.metas[ki], r.h.cells)
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(ref, err)
			s.removeRefLocked(ref)
			s.mu.Unlock()
			continue
		}
		for _, k := range keys {
			seen[k] = struct{}{}
		}
	}
	s.mu.Lock()
	if s.seen == nil {
		s.seen = seen
		for _, cells := range s.pending {
			for i := range cells {
				s.seen[cells[i].Key] = struct{}{}
			}
		}
	}
}

// partitionKey buckets a cell for block purity: one partition per
// (category, config) pair, so a flushed block's category and config
// dictionaries are singletons and its trace dictionary spans one category.
func partitionKey(cell *Cell) string {
	return cell.Category + "\x00" + cell.Config
}

// Append offers one cell. Cells already present under the same content key
// (on disk or pending) are dropped — the engine is deterministic, so a
// duplicate key is a duplicate cell. Cells buffer per (category, config)
// partition; a partition flushes to its own block once BlockCells
// accumulate, keeping footer statistics pure so pruning bites.
func (s *Store) Append(cell Cell) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("expstore: store closed")
	}
	s.buildSeenLocked()
	s.stats.Appends++
	if _, dup := s.seen[cell.Key]; dup {
		s.stats.DupSkipped++
		return nil
	}
	s.seen[cell.Key] = struct{}{}
	part := partitionKey(&cell)
	s.pending[part] = append(s.pending[part], cell)
	s.nPending++
	if len(s.pending[part]) >= s.cfg.BlockCells {
		return s.flushPartitionLocked(part)
	}
	return nil
}

// sortCells orders a batch by identity columns then key, so block footer
// statistics are tight and pruning bites.
func sortCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		a, b := &cells[i], &cells[j]
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return bytes.Compare(a.Key[:], b.Key[:]) < 0
	})
}

// Flush writes every pending partition as a block, in partition order.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nPending == 0 {
		return nil
	}
	parts := make([]string, 0, len(s.pending))
	for part := range s.pending {
		parts = append(parts, part)
	}
	sort.Strings(parts)
	var firstErr error
	for _, part := range parts {
		if err := s.flushPartitionLocked(part); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Store) flushPartitionLocked(part string) error {
	cells := s.pending[part]
	if len(cells) == 0 {
		return nil
	}
	delete(s.pending, part)
	s.nPending -= len(cells)
	sortCells(cells)
	bm := blockMeta{runID: s.runID, baseSeq: s.baseSeq}
	ref, err := s.writeBlockLocked(cells, bm, 0, 0, true)
	if err != nil {
		s.stats.WriteErrors++
		// The cells' keys stay in seen: re-offering them this process
		// would fail the same way. A later process re-appends them.
		s.cfg.Warn("expstore: block write failed, %d cells dropped: %v", len(cells), err)
		return err
	}
	s.insertRefLocked(ref)
	s.maybeCompactLocked()
	return nil
}

// writeBlockLocked encodes cells and publishes the file under an unused
// (seq, gen) name via link-into-place, so two processes appending to the
// same directory cannot silently overwrite each other's blocks. Fresh
// flushes pass bumpSeq and allocate the next sequence number; compaction
// keeps its first input's sequence and bumps the generation instead.
func (s *Store) writeBlockLocked(cells []Cell, bm blockMeta, seq, gen int, bumpSeq bool) (*blockRef, error) {
	img, err := encodeBlock(cells, bm)
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, "tmp-*")
	if err != nil {
		return nil, err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	var path string
	for {
		if bumpSeq {
			seq = s.nextSeq
			s.nextSeq++
		}
		path = filepath.Join(s.cfg.Dir, blockName(seq, gen))
		err := os.Link(tmpPath, path)
		if err == nil {
			break
		}
		if errors.Is(err, os.ErrExist) {
			if !bumpSeq {
				gen++ // crash leftover under this name; take the next generation
			}
			continue // name taken (by another process or a leftover); try the next
		}
		// Filesystem without hard links: fall back to plain rename.
		if err := os.Rename(tmpPath, path); err != nil {
			return nil, err
		}
		break
	}
	s.stats.BlocksWritten++
	s.stats.CellsWritten += uint64(len(cells))
	s.stats.BytesWritten += uint64(len(img))
	ref := &blockRef{path: path, seq: seq, gen: gen, size: int64(len(img))}
	if v := s.classify(ref); v != blockOK {
		return nil, fmt.Errorf("expstore: freshly written block %s fails validation", path)
	}
	return ref, nil
}

// insertRefLocked adds a block keeping (seq, gen) order.
func (s *Store) insertRefLocked(ref *blockRef) {
	i := sort.Search(len(s.blocks), func(i int) bool {
		b := s.blocks[i]
		return b.seq > ref.seq || (b.seq == ref.seq && b.gen >= ref.gen)
	})
	s.blocks = append(s.blocks, nil)
	copy(s.blocks[i+1:], s.blocks[i:])
	s.blocks[i] = ref
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Blocks returns the number of serveable blocks.
func (s *Store) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.blocks {
		if !b.foreign {
			n++
		}
	}
	return n
}

// Close flushes pending cells, waits out any background compaction, and
// unmaps every block. The store must not be used afterwards.
func (s *Store) Close() error {
	err := s.Flush()
	s.mu.Lock()
	for s.compacting {
		s.compactCv.Wait()
	}
	s.closed = true
	refs := append(append([]*blockRef{}, s.blocks...), s.retired...)
	s.blocks, s.retired = nil, nil
	s.mu.Unlock()
	for _, ref := range refs {
		if ref.data != nil {
			unmapFile(ref.data)
			ref.data = nil
		}
	}
	return err
}
