package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tracerebase/internal/synth"
)

// TestRunSweepDeterminism: the work-queue sweep produces bit-identical
// TraceResults regardless of worker count — serial and 4-way parallel runs
// must agree on every field of every result.
func TestRunSweepDeterminism(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Crypto, 1),
		synth.PublicProfile(synth.Server, 3),
	}
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantBranch, VariantAll)

	serial := cfg
	serial.Parallelism = 1
	a, err := RunSweep(profiles, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Parallelism = 4
	b, err := RunSweep(profiles, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel sweep differs from serial sweep")
	}
}

// TestRunSweepErrorAggregation: failing traces contribute their errors to
// one joined error while healthy traces still deliver full results.
func TestRunSweepErrorAggregation(t *testing.T) {
	bad1 := synth.Profile{Name: "bad1"} // zero profile fails Validate
	bad2 := synth.Profile{Name: "bad2"}
	good := synth.PublicProfile(synth.ComputeInt, 2)
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantAll)

	res, err := RunSweep([]synth.Profile{bad1, good, bad2}, cfg)
	if err == nil {
		t.Fatal("RunSweep returned nil error for invalid profiles")
	}
	// Both failures must be present in the joined error, once each.
	msg := err.Error()
	if strings.Count(msg, "generate bad1") != 1 || strings.Count(msg, "generate bad2") != 1 {
		t.Fatalf("joined error should name each failing trace once: %q", msg)
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error is not a joined error: %T", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Fatalf("joined error holds %d errors, want 2", n)
	}
	// Partial results: slots align with profiles, the healthy trace is
	// complete, the failed ones carry empty result maps.
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if len(res[0].Results) != 0 || len(res[2].Results) != 0 {
		t.Error("failed traces should have empty Results")
	}
	if len(res[1].Results) != len(cfg.Variants) {
		t.Fatalf("healthy trace has %d results, want %d", len(res[1].Results), len(cfg.Variants))
	}
	if res[1].Results[VariantAll].IPC <= 0 {
		t.Error("healthy trace result looks empty")
	}
}

// TestRunSweepProgress: Progress fires once per trace with a distinct done
// count, and the callback may itself block briefly without deadlocking the
// sweep (it runs outside the sweep's internal lock).
func TestRunSweepProgress(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Crypto, 1),
	}
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone)
	cfg.Parallelism = 2

	var mu sync.Mutex
	seen := map[int]bool{}
	cfg.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(profiles) {
			t.Errorf("Progress total = %d, want %d", total, len(profiles))
		}
		if seen[done] {
			t.Errorf("Progress fired twice with done=%d", done)
		}
		seen[done] = true
	}
	if _, err := RunSweep(profiles, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(profiles) || !seen[1] || !seen[2] {
		t.Fatalf("Progress counts seen: %v", seen)
	}
}
