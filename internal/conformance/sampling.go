package conformance

// Sampling oracles: SMARTS-style sampled simulation (sim.Config.SamplePeriod)
// trades a pinned, bounded IPC error for speed, and everything else about it
// must stay exact — deterministic replay, checkpoint-resume equality, cache
// keys disjoint from exact mode's. These checks make those contracts part of
// `rebase -selftest`, alongside the golden corpus's pinned sampled counters.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// selftestSampling sizes the selftest's sampled runs: SimInstructions-length
// traces are far shorter than production runs, so the period scales down with
// them (the golden corpus pins its own, manifest-recorded parameters).
func selftestSampling(n int) (period, detail, warm uint64) {
	period = uint64(n) / 8
	if period < 16 {
		period = 16
	}
	return period, period / 2, period / 4
}

func sampledCfg(opts core.Options, period, detail, warm uint64) sim.Config {
	cfg := develCfg(opts)
	cfg.SamplePeriod, cfg.SampleDetail, cfg.SampleWarm = period, detail, warm
	return cfg
}

// sampledCfgFor is sampledCfg at the selftest's n-scaled parameters.
func sampledCfgFor(opts core.Options, n int) sim.Config {
	period, detail, warm := selftestSampling(n)
	return sampledCfg(opts, period, detail, warm)
}

// CheckSampledDeterminism generates the profile's trace once and runs the
// sampled simulation twice, requiring bit-identical statistics: interval
// placement is a pure function of the trace (content-salted LCG), so sampled
// runs must replay exactly.
func CheckSampledDeterminism(p synth.Profile, n int, warmup uint64) error {
	instrs, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	cfg := sampledCfgFor(opts, n)
	first, err := simulate(instrs, opts, cfg, warmup)
	if err != nil {
		return err
	}
	second, err := simulate(instrs, opts, cfg, warmup)
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("%s: two sampled runs of the same trace diverge:\n first  %+v\n second %+v", p.Name, first, second)
	}
	if first.SampleIntervals == 0 {
		return fmt.Errorf("%s: sampled run measured no intervals (period too long for %d instructions?)", p.Name, n)
	}
	return nil
}

// CheckCheckpointResume proves the mid-trace resume contract. In sampled
// mode a run's warm-up phase is exactly the functional warming a checkpoint
// captures, so resuming from a warm-up checkpoint must reproduce the
// uninterrupted run bit for bit. In exact mode the plain run warms up
// through the detailed pipeline instead, so the resume oracle is restore
// determinism: two independent resumes from the same checkpoint must agree
// (the live-continuation equality is covered by the simulator's own tests).
func CheckCheckpointResume(p synth.Profile, n int, warmup uint64) error {
	instrs, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	resume := func(cfg sim.Config, ck sim.Checkpoint) (sim.Stats, error) {
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
		defer cs.Close()
		return sim.RunFrom(cs, cfg, ck, 0)
	}
	checkpoint := func(cfg sim.Config) (sim.Checkpoint, error) {
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
		defer cs.Close()
		return sim.WarmCheckpoint(cs, cfg, warmup)
	}

	sampled := sampledCfgFor(opts, n)
	straight, err := simulate(instrs, opts, sampled, warmup)
	if err != nil {
		return fmt.Errorf("%s sampled: %w", p.Name, err)
	}
	ck, err := checkpoint(sampled)
	if err != nil {
		return fmt.Errorf("%s sampled: checkpoint: %w", p.Name, err)
	}
	resumed, err := resume(sampled, ck)
	if err != nil {
		return fmt.Errorf("%s sampled: resume: %w", p.Name, err)
	}
	if straight != resumed {
		return fmt.Errorf("%s sampled: checkpoint resume diverges from the uninterrupted run:\n straight %+v\n resumed  %+v",
			p.Name, straight, resumed)
	}

	exact := develCfg(opts)
	ck, err = checkpoint(exact)
	if err != nil {
		return fmt.Errorf("%s exact: checkpoint: %w", p.Name, err)
	}
	first, err := resume(exact, ck)
	if err != nil {
		return fmt.Errorf("%s exact: resume: %w", p.Name, err)
	}
	second, err := resume(exact, ck)
	if err != nil {
		return fmt.Errorf("%s exact: resume: %w", p.Name, err)
	}
	if first != second {
		return fmt.Errorf("%s exact: two resumes from one checkpoint diverge:\n first  %+v\n second %+v",
			p.Name, first, second)
	}
	return nil
}

// CheckSampledKeyDisjoint proves that sampled and exact simulations can
// never share a result-cache entry, and that different sampling parameters
// key apart from each other: the sampling knobs participate in
// cpu.Config.Identity, so every (period, detail, warm) triple is its own
// cache universe.
func CheckSampledKeyDisjoint(p synth.Profile, n int, warmup uint64) error {
	opts := core.OptionsAll()
	period, detail, warm := selftestSampling(n)
	cfgs := []struct {
		name string
		cfg  sim.Config
	}{
		{"exact", develCfg(opts)},
		{"sampled", sampledCfg(opts, period, detail, warm)},
		{"sampled-period/2", sampledCfg(opts, period/2, detail/2, warm/2)},
		{"sampled-warm/2", sampledCfg(opts, period, detail, warm/2)},
	}
	seen := make(map[string]string, len(cfgs))
	for _, c := range cfgs {
		key := experiments.CacheKey(p, opts, c.cfg, n, warmup).Key
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("%s: cache key collision between %s and %s configurations (key %s)",
				p.Name, prev, c.name, key)
		}
		seen[key] = c.name
	}
	return nil
}

// CheckSampledParallelism runs the same sampled sweep single-threaded and
// with parallelism workers and requires byte-identical results: interval
// schedules are per-trace deterministic, so worker scheduling must not leak
// into sampled statistics any more than into exact ones.
func CheckSampledParallelism(profiles []synth.Profile, instructions int, warmup uint64, parallelism int) error {
	if parallelism < 2 {
		parallelism = 4
	}
	period, detail, warm := selftestSampling(instructions)
	run := func(par int) ([]byte, error) {
		res, err := experiments.RunSweep(profiles, experiments.SweepConfig{
			Instructions: instructions,
			Warmup:       warmup,
			Parallelism:  par,
			SamplePeriod: period,
			SampleDetail: detail,
			SampleWarm:   warm,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
	serial, err := run(1)
	if err != nil {
		return fmt.Errorf("-parallel 1: %w", err)
	}
	concurrent, err := run(parallelism)
	if err != nil {
		return fmt.Errorf("-parallel %d: %w", parallelism, err)
	}
	if !bytes.Equal(serial, concurrent) {
		return fmt.Errorf("sampled sweep results differ between -parallel 1 and -parallel %d (%d vs %d JSON bytes)",
			parallelism, len(serial), len(concurrent))
	}
	return nil
}
