//go:build !unix

package expstore

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file on platforms without mmap
// support wired up. Semantics are identical; only sharing is lost.
func mapFile(f *os.File, size int64) ([]byte, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func unmapFile([]byte) error { return nil }
