package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{4}); !almost(g, 4) {
		t.Errorf("Geomean([4]) = %v", g)
	}
	if g := Geomean([]float64{1, 4}); !almost(g, 2) {
		t.Errorf("Geomean([1,4]) = %v, want 2", g)
	}
	if g := Geomean([]float64{2, 2, 2}); !almost(g, 2) {
		t.Errorf("Geomean constant = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geomean accepted non-positive value")
		}
	}()
	Geomean([]float64{1, 0})
}

// Property: the geomean is scale-equivariant — Geomean(k*xs) = k*Geomean(xs).
func TestGeomeanScaling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 1
		xs := make([]float64, n)
		scaled := make([]float64, n)
		k := r.Float64()*9 + 1
		for i := range xs {
			xs[i] = r.Float64()*10 + 0.1
			scaled[i] = xs[i] * k
		}
		return math.Abs(Geomean(scaled)-k*Geomean(xs)) < 1e-6*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); !almost(m, 2) {
		t.Errorf("Mean = %v", m)
	}
}

func TestPercentDelta(t *testing.T) {
	if d := PercentDelta(2, 2.1); !almost(d, 5) {
		t.Errorf("PercentDelta(2, 2.1) = %v, want 5", d)
	}
	if d := PercentDelta(2, 1.9); !almost(d, -5) {
		t.Errorf("PercentDelta(2, 1.9) = %v, want -5", d)
	}
}

func TestMPKI(t *testing.T) {
	if m := MPKI(50, 100000); !almost(m, 0.5) {
		t.Errorf("MPKI = %v, want 0.5", m)
	}
	if m := MPKI(10, 0); m != 0 {
		t.Errorf("MPKI with zero instructions = %v", m)
	}
}

func TestSortAndCounts(t *testing.T) {
	xs := []float64{3, -7, 5, 0, -2}
	sorted := SortDescending(xs)
	want := []float64{5, 3, 0, -2, -7}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("SortDescending = %v", sorted)
		}
	}
	if xs[0] != 3 {
		t.Error("SortDescending mutated its argument")
	}
	if n := CountAbove(xs, 0); n != 2 {
		t.Errorf("CountAbove = %d, want 2", n)
	}
	if n := CountBelow(xs, 0); n != 2 {
		t.Errorf("CountBelow = %d, want 2", n)
	}
	if Max(xs) != 5 || Min(xs) != -7 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("Max/Min of nil should be 0")
	}
}
