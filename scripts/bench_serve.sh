#!/usr/bin/env bash
# bench_serve.sh — sweep-service latency benchmark: cold submit vs warm
# repeat vs remote-tier hit, emitting BENCH_9.json.
#
#   scripts/bench_serve.sh [exp] [step] [repeats]
#
# Starts daemon A over a fresh cache dir, submits one cold job (full
# compute), then repeats the identical submission `repeats` times — every
# repeat must be served from A's memory tier, and the headline number is
# the p50 of the server-side latencies. A second daemon B then chains A
# as its remote tier: B's first submission must arrive over the wire
# with zero compute, and a B repeat must hit B's own memory tier. All
# outputs are cmp'd byte-for-byte against the batch CLI.
set -euo pipefail

EXP="${1:-all}"
STEP="${2:-3}"
REPEATS="${3:-20}"
INSTRUCTIONS="${INSTRUCTIONS:-150000}"
WARMUP="${WARMUP:-50000}"
OUT="${OUT:-BENCH_9.json}"

cd "$(dirname "$0")/.."
BIN=/tmp/rebase-bench-serve
go build -o "$BIN" ./cmd/rebase

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # $1 = cache dir, $2 = log file, extra args follow
  local dir="$1" log="$2"
  shift 2
  # </dev/null + >/dev/null detach the daemon from the caller's command
  # substitution, which would otherwise wait for the daemon to exit.
  "$BIN" serve -addr 127.0.0.1:0 -cache-dir "$dir" -no-trace-store "$@" \
    </dev/null >/dev/null 2>"$log" &
  PIDS+=($!)
  local url=""
  for _ in $(seq 1 100); do
    url="$(sed -n 's/.*serving on \(http:\/\/[0-9.]*:[0-9]*\).*/\1/p' "$log" | head -1)"
    [ -n "$url" ] && break
    sleep 0.1
  done
  [ -n "$url" ] || { echo "daemon failed to start; log:" >&2; cat "$log" >&2; exit 1; }
  echo "$url"
}

SUBMIT_ARGS=(-exp "$EXP" -step "$STEP" -instructions "$INSTRUCTIONS" -warmup "$WARMUP")

submit() { # $1 = daemon URL, $2 = stdout file; prints "served seconds"
  "$BIN" submit -url "$1" "${SUBMIT_ARGS[@]}" >"$2" 2>"$WORK/submit.err"
  sed -n 's/^served: \([a-z]*\) in \([0-9.]*\)s$/\1 \2/p' "$WORK/submit.err"
}

echo "== batch reference (${EXP}, step ${STEP})" >&2
"$BIN" "${SUBMIT_ARGS[@]}" -no-cache -no-trace-store -q >"$WORK/want.out"

echo "== daemon A: cold submit" >&2
URL_A="$(start_daemon "$WORK/cache-a" "$WORK/a.log")"
read -r COLD_SERVED COLD_SECONDS <<<"$(submit "$URL_A" "$WORK/cold.out")"
cmp "$WORK/want.out" "$WORK/cold.out"
[ "$COLD_SERVED" = computed ] || { echo "cold submit served=$COLD_SERVED, want computed" >&2; exit 1; }

echo "== daemon A: ${REPEATS} warm repeats" >&2
WARM_TIMES=()
for _ in $(seq 1 "$REPEATS"); do
  read -r served secs <<<"$(submit "$URL_A" "$WORK/warm.out")"
  cmp "$WORK/want.out" "$WORK/warm.out"
  [ "$served" = memory ] || { echo "warm repeat served=$served, want memory" >&2; exit 1; }
  WARM_TIMES+=("$secs")
done
WARM_P50="$(printf '%s\n' "${WARM_TIMES[@]}" | sort -g | awk -v n="$REPEATS" 'NR == int((n + 1) / 2)')"
WARM_MAX="$(printf '%s\n' "${WARM_TIMES[@]}" | sort -g | tail -1)"

echo "== daemon B chained to A: remote-tier hit" >&2
URL_B="$(start_daemon "$WORK/cache-b" "$WORK/b.log" -remote "$URL_A")"
read -r REMOTE_SERVED REMOTE_SECONDS <<<"$(submit "$URL_B" "$WORK/remote.out")"
cmp "$WORK/want.out" "$WORK/remote.out"
[ "$REMOTE_SERVED" = remote ] || { echo "chained submit served=$REMOTE_SERVED, want remote" >&2; exit 1; }
read -r BWARM_SERVED BWARM_SECONDS <<<"$(submit "$URL_B" "$WORK/bwarm.out")"
cmp "$WORK/want.out" "$WORK/bwarm.out"
[ "$BWARM_SERVED" = memory ] || { echo "chained repeat served=$BWARM_SERVED, want memory" >&2; exit 1; }

cat >"$OUT" <<EOF
{
  "description": "Sweep-service latency: one daemon computes a job cold, then answers $REPEATS identical submissions from its in-memory tier; a second daemon chained to the first pulls the same job over the remote tier without invoking a generator, converter, or simulator, then serves its own repeat from memory. Every response was cmp'd byte-identical to the batch CLI run of the same flags. Latencies are server-side (lookup + stream), as reported in the done event.",
  "experiment": "$EXP",
  "step": $STEP,
  "instructions": $INSTRUCTIONS,
  "warmup": $WARMUP,
  "cold_compute_seconds": $COLD_SECONDS,
  "warm_repeats": $REPEATS,
  "warm_memory_p50_seconds": $WARM_P50,
  "warm_memory_max_seconds": $WARM_MAX,
  "remote_tier_hit_seconds": $REMOTE_SECONDS,
  "chained_warm_memory_seconds": $BWARM_SECONDS,
  "byte_identical": true
}
EOF
echo "cold ${COLD_SECONDS}s; warm p50 ${WARM_P50}s (max ${WARM_MAX}s); remote ${REMOTE_SECONDS}s; chained warm ${BWARM_SECONDS}s" >&2
echo "wrote $OUT" >&2
