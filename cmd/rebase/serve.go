package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracerebase/internal/experiments"
	"tracerebase/internal/expstore"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/server"
)

// runServe is the `rebase serve` subcommand: the long-running sweep
// daemon over a tiered result-cache backend (memory LRU -> local disk ->
// optional remote peer).
func runServe(args []string) int {
	fs := flag.NewFlagSet("rebase serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8344", "listen address")
		workers    = fs.Int("workers", 1, "concurrent job executions (cache hits bypass the pool)")
		parallel   = fs.Int("parallel", 0, "concurrent simulations per job (0 = NumCPU)")
		cacheDir   = fs.String("cache-dir", "", "cache directory (default $TRACEREBASE_CACHE_DIR or the user cache dir)")
		memBytes   = fs.Int64("mem-bytes", 0, "in-memory tier budget in bytes (0 = 256 MiB)")
		remote     = fs.String("remote", "", "peer daemon to chain as the slowest cache tier, e.g. http://host:8344 (its /cache mount is used)")
		noSlabs    = fs.Bool("no-trace-store", false, "disable the compiled-trace slab store")
		noExpStore = fs.Bool("no-exp-store", false, "disable the columnar experiment store (and GET /query)")
		quiet      = fs.Bool("q", false, "suppress operational log output")
	)
	fs.Parse(args)

	log := io.Writer(os.Stderr)
	if *quiet {
		log = io.Discard
	}

	dir := *cacheDir
	if dir == "" {
		var err error
		dir, err = experiments.DefaultCacheDir()
		if err != nil {
			return fail("serve: %v", err)
		}
	}

	// Tier composition, fastest first: memory LRU, local disk, optional
	// remote peer. One backend serves both the per-cell result cache and
	// the whole-job blob store (distinct key domains).
	disk, err := resultcache.NewDisk(resultcache.DiskConfig{Dir: dir})
	if err != nil {
		return fail("serve: %v", err)
	}
	tiers := []resultcache.Backend{resultcache.NewMemory(*memBytes), disk}
	if *remote != "" {
		base, err := remoteCacheURL(*remote)
		if err != nil {
			return fail("serve: %v", err)
		}
		r, err := resultcache.NewRemote(resultcache.RemoteConfig{BaseURL: base})
		if err != nil {
			return fail("serve: %v", err)
		}
		tiers = append(tiers, r)
	}
	backend := resultcache.NewTiered(tiers...)
	cache := experiments.NewResultCache(backend)
	defer cache.Close() // flushes write-back and closes every tier

	base := experiments.SweepConfig{
		Parallelism: *parallel,
		Cache:       cache,
	}
	if ckpts, err := experiments.OpenCheckpointCache(dir, 0); err == nil {
		base.Checkpoints = ckpts
	} else {
		fmt.Fprintf(log, "rebase: checkpoint cache disabled: %v\n", err)
	}
	if !*noSlabs {
		store, err := experiments.OpenSlabStore(dir+"/slabs", 0, func(format string, a ...any) {
			fmt.Fprintf(log, "rebase: "+format+"\n", a...)
		})
		if err != nil {
			fmt.Fprintf(log, "rebase: trace store disabled: %v\n", err)
		} else {
			base.Slabs = store
			defer store.Close()
		}
	}
	if !*noExpStore {
		store, err := expstore.Open(expstore.Config{Dir: dir + "/exp", Warn: func(format string, a ...any) {
			fmt.Fprintf(log, "rebase: "+format+"\n", a...)
		}})
		if err != nil {
			fmt.Fprintf(log, "rebase: experiment store disabled: %v\n", err)
		} else {
			base.Exp = store
			defer store.Close()
		}
	}

	srv := server.New(server.Config{
		Backend: backend,
		Base:    base,
		Workers: *workers,
		Log:     log,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("serve: %v", err)
	}
	fmt.Fprintf(log, "rebase: serving on http://%s (workers=%d, cache=%s, tiers=%d)\n",
		l.Addr(), *workers, dir, len(tiers))

	// SIGINT/SIGTERM triggers the graceful path: stop accepting, finish
	// in-flight jobs, flush the write-back queue, then exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigc:
		fmt.Fprintf(log, "rebase: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fail("serve: shutdown: %v", err)
		}
		fmt.Fprintf(log, "rebase: drained, exiting\n")
		return 0
	case err := <-done:
		if err != nil {
			return fail("serve: %v", err)
		}
		return 0
	}
}

// remoteCacheURL resolves a -remote flag value to the peer's /cache
// mount: a bare daemon root gets "/cache" appended; an explicit path is
// kept as given.
func remoteCacheURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("bad -remote URL %q: %v", raw, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/cache"
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}
