package core

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// MapReg translates a CVP-1 Aarch64 architectural register number (0..63)
// to a ChampSim trace register id.
//
// ChampSim reserves id 0 as "no register" and keys its branch-type deduction
// on ids 6 (stack pointer), 25 (flags), and 26 (instruction pointer);
// id 56 is the artificial "reads other" register the original converter
// attaches to indirect branches. Aarch64 registers are therefore shifted by
// one (X0→1 ... X30→31, SP→32, V0→33 ...) and the four ids that would
// collide with the reserved ones are relocated above the Aarch64 range.
func MapReg(r uint8) uint8 {
	m := r + 1
	switch m {
	case champtrace.RegStackPointer: // X5
		return 65
	case champtrace.RegFlags: // X24
		return 66
	case champtrace.RegInstructionPointer: // X25
		return 67
	case champtrace.RegOther: // V23
		return 68
	}
	return m
}

// RegX0Mapped is the ChampSim id of Aarch64 X0, which the original
// converter pads onto instructions that have no destination register.
var RegX0Mapped = MapReg(cvp.RegX0)

// RegLRMapped is the ChampSim id of the Aarch64 link register X30.
var RegLRMapped = MapReg(cvp.RegLR)
